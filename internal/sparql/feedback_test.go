package sparql

import (
	"fmt"
	"sync"
	"testing"

	"rdfanalytics/internal/rdf"
)

// scanEst builds a profile estimate row with the "[]" (no bound variables)
// context, the key a plan's first scan records under, observed over one
// input row.
func scanEst(op, label string, actual int64) EstimateStat {
	return EstimateStat{Op: op, Label: label, Est: 1, Actual: actual, ActualIn: 1, Ctx: "[]"}
}

// siteKey composes a feedback site key the way the store does.
func siteKey(label, ctx string) string {
	return label + "\x00" + ctx
}

func TestFeedbackStoreBasics(t *testing.T) {
	fb := NewFeedbackStore()
	if got := fb.SiteActuals("fp1", 3); got != nil {
		t.Fatalf("empty store returned actuals: %v", got)
	}
	fb.Observe("fp1", 3, []EstimateStat{
		scanEst("scan", "?s <p> ?o .", 42),
		scanEst("scan", "?o <q> ?r .", 7),
		scanEst("filter", "?x > 1", 99),                                        // non-scan ops must be ignored
		scanEst("scan", "", 5),                                                 // unlabeled scans must be ignored
		{Op: "scan", Label: "?a <r> ?b .", Est: 1, Actual: 3},                  // context-less scans must be ignored
		{Op: "scan", Label: "?o <q> ?r .", Actual: 9, ActualIn: 4, Ctx: "[o]"}, // same pattern, different context: a distinct site
	})
	got := fb.SiteActuals("fp1", 3)
	if len(got) != 3 ||
		got[siteKey("?s <p> ?o .", "[]")] != (SiteActual{In: 1, Out: 42}) ||
		got[siteKey("?o <q> ?r .", "[]")] != (SiteActual{In: 1, Out: 7}) ||
		got[siteKey("?o <q> ?r .", "[o]")] != (SiteActual{In: 4, Out: 9}) {
		t.Fatalf("SiteActuals = %v, want 3 context-keyed scan sites", got)
	}
	// The returned map must be a copy: mutating it cannot poison the store.
	got[siteKey("?s <p> ?o .", "[]")] = SiteActual{In: 1, Out: -1}
	if again := fb.SiteActuals("fp1", 3); again[siteKey("?s <p> ?o .", "[]")].Out != 42 {
		t.Fatalf("store mutated through returned snapshot: %v", again)
	}
	st := fb.Stats()
	if st.Fingerprints != 1 || st.Seeds != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 fingerprint, 1 seed, 2 hits, 1 miss", st)
	}
	if !fb.SeededFingerprints()["fp1"] {
		t.Fatal("fp1 missing from SeededFingerprints")
	}

	var nilFB *FeedbackStore
	nilFB.Observe("fp", 1, []EstimateStat{scanEst("scan", "x", 1)})
	if nilFB.SiteActuals("fp", 1) != nil || nilFB.SeededFingerprints() != nil {
		t.Fatal("nil store must be a no-op")
	}
	if (nilFB.Stats() != FeedbackStats{}) {
		t.Fatal("nil store stats must be zero")
	}
}

// TestFeedbackVersionInvalidation: a graph-version bump must wholesale
// invalidate seeded estimates — stale cardinalities are worse than none.
func TestFeedbackVersionInvalidation(t *testing.T) {
	fb := NewFeedbackStore()
	fb.Observe("fp1", 1, []EstimateStat{scanEst("scan", "site", 10)})
	if got := fb.SiteActuals("fp1", 1); got == nil {
		t.Fatal("same-version lookup missed")
	}
	if got := fb.SiteActuals("fp1", 2); got != nil {
		t.Fatalf("stale estimates survived a version bump: %v", got)
	}
	if st := fb.Stats(); st.Fingerprints != 0 || st.Version != 2 {
		t.Fatalf("stats after bump = %+v, want 0 fingerprints at version 2", st)
	}
	// Re-seeding at the new version works again.
	fb.Observe("fp1", 2, []EstimateStat{scanEst("scan", "site", 20)})
	if got := fb.SiteActuals("fp1", 2); got[siteKey("site", "[]")].Out != 20 {
		t.Fatalf("re-seed after bump failed: %v", got)
	}
}

func TestFeedbackEviction(t *testing.T) {
	fb := NewFeedbackStore()
	for i := 0; i < maxFeedbackFingerprints+10; i++ {
		fb.Observe(fmt.Sprintf("fp%d", i), 1, []EstimateStat{scanEst("scan", "s", 1)})
	}
	if n := fb.Stats().Fingerprints; n > maxFeedbackFingerprints {
		t.Fatalf("fingerprints = %d, want <= %d", n, maxFeedbackFingerprints)
	}
	// The most recently seeded entry must have survived LRU eviction.
	if fb.SiteActuals(fmt.Sprintf("fp%d", maxFeedbackFingerprints+9), 1) == nil {
		t.Fatal("newest fingerprint evicted")
	}
}

const feedbackQuery = `PREFIX ex: <http://e/>
SELECT ?i ?b ?q WHERE {
  ?i ex:takesPlaceAt ?b .
  ?i ex:inQuantity ?q .
  ?i ex:delivers ?p .
}`

// runWithFeedback executes q once against g with the shared store, returning
// the profile's estimate rows.
func runWithFeedback(t *testing.T, g *rdf.Graph, fb *FeedbackStore, src string) []EstimateStat {
	t.Helper()
	q := MustParse(src)
	prof := NewProfile("query")
	_, err := ExecSelectOpts(g, q, Options{
		Planner:       PlannerFeedback,
		Feedback:      fb,
		FingerprintID: FingerprintID(Fingerprint(q)),
		Profile:       prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof.Estimates()
}

// TestFeedbackSecondRunSeeded is the closed loop end to end: the first run
// plans cold, the second plans from the first run's actuals, so every scan
// estimate is exact (q-error 1) and marked feedback-seeded.
func TestFeedbackSecondRunSeeded(t *testing.T) {
	g := invoices(t)
	fb := NewFeedbackStore()
	first := runWithFeedback(t, g, fb, feedbackQuery)
	if len(first) == 0 {
		t.Fatal("first run produced no estimates")
	}
	for _, e := range first {
		if e.Feedback {
			t.Fatalf("cold run marked feedback-seeded: %+v", e)
		}
	}
	second := runWithFeedback(t, g, fb, feedbackQuery)
	if len(second) == 0 {
		t.Fatal("second run produced no estimates")
	}
	for _, e := range second {
		if e.Op != "scan" {
			continue
		}
		if !e.Feedback {
			t.Errorf("second-run scan %q not feedback-seeded (est %d actual %d)", e.Label, e.Est, e.Actual)
		}
		if e.QError != 1 {
			t.Errorf("second-run scan %q q-error = %v, want 1", e.Label, e.QError)
		}
	}
}

// TestFeedbackResultsUnchanged: planning from feedback must not change
// answers.
func TestFeedbackResultsUnchanged(t *testing.T) {
	g := invoices(t)
	fb := NewFeedbackStore()
	q := MustParse(feedbackQuery)
	base, err := ExecSelectOpts(g, q, Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		prof := NewProfile("query")
		res, err := ExecSelectOpts(g, q, Options{
			Planner:       PlannerFeedback,
			Feedback:      fb,
			FingerprintID: FingerprintID(Fingerprint(q)),
			Profile:       prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := canonical(res.Rows, res.Vars), canonical(base.Rows, base.Vars); len(got) != len(want) {
			t.Fatalf("pass %d: %d rows, want %d", pass, len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pass %d row %d: %q != %q", pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFeedbackGraphMutationInvalidates: updating the graph bumps its version,
// so the next run must plan cold rather than from stale actuals.
func TestFeedbackGraphMutationInvalidates(t *testing.T) {
	g := invoices(t)
	fb := NewFeedbackStore()
	runWithFeedback(t, g, fb, feedbackQuery)
	if fb.Stats().Fingerprints == 0 {
		t.Fatal("first run did not seed the store")
	}
	g.Add(rdf.Triple{
		S: rdf.NewIRI("http://e/i99"),
		P: rdf.NewIRI("http://e/takesPlaceAt"),
		O: rdf.NewIRI("http://e/branch9"),
	})
	for _, e := range runWithFeedback(t, g, fb, feedbackQuery) {
		if e.Feedback {
			t.Fatalf("post-mutation run used stale feedback: %+v", e)
		}
	}
}

// TestFeedbackConcurrentReplans: many goroutines planning from and observing
// into one store, with interleaved graph-version bumps, must be race-free
// (run under -race) and leave the store consistent.
func TestFeedbackConcurrentReplans(t *testing.T) {
	g := invoices(t)
	fb := NewFeedbackStore()
	q := MustParse(feedbackQuery)
	fpID := FingerprintID(Fingerprint(q))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				prof := NewProfile("query")
				if _, err := ExecSelectOpts(g, q, Options{
					Planner:       PlannerFeedback,
					Feedback:      fb,
					FingerprintID: fpID,
					Profile:       prof,
				}); err != nil {
					t.Error(err)
					return
				}
				if w == 0 && i%10 == 9 {
					// Simulate a concurrent writer invalidating the store.
					fb.SiteActuals(fpID, g.Version()+uint64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if n := fb.Stats().Fingerprints; n > 1 {
		t.Fatalf("fingerprints = %d, want <= 1", n)
	}
}
