package sparql

import (
	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/par"
	"rdfanalytics/internal/rdf"
)

// ID-space BGP execution. A maximal run of consecutive triple patterns is
// compiled against one shared variable table (runPlan); intermediate rows
// are flat []rdf.ID slices — no Binding maps, no Term hashing, nothing for
// the garbage collector to trace — and Binding maps are materialized once
// per *final* row of the run. Each pattern picks a join strategy from its
// cached cardinality estimate and the live row count, and row batches are
// partitioned across the worker pool with an order-preserving merge.

const (
	// parallelThreshold is the minimum row count before a pattern evaluation
	// is partitioned across workers: below it, goroutine and merge overhead
	// dominates and evaluation stays sequential.
	parallelThreshold = 64
	// hashJoinMinInput is the minimum input size for which building a hash
	// table can pay off at all.
	hashJoinMinInput = 8
	// hashBuildFactor bounds the build side: a hash join is chosen when the
	// pattern's match count is at most this multiple of the input size
	// (otherwise per-row index probes touch less data than one full scan).
	hashBuildFactor = 4
)

// joinStrategy names the per-pattern execution strategy.
type joinStrategy int

const (
	strategyNestedLoop joinStrategy = iota // per-row ID index lookups
	strategyHashJoin                       // build pattern matches, probe rows
)

func (s joinStrategy) String() string {
	if s == strategyHashJoin {
		return "hash join"
	}
	return "index loop"
}

// chooseStrategy picks the join strategy for one pattern: est is the
// pattern's match count with only constants bound, inputLen the number of
// input rows, nJoinVars how many pattern variables arrive bound, and mixed
// whether some variable is bound in only part of the input (which forces
// per-row handling). The choice never depends on the worker count, so
// output order is identical at every parallelism level.
func chooseStrategy(est, inputLen, nJoinVars int, mixed bool) joinStrategy {
	if mixed || inputLen < hashJoinMinInput {
		return strategyNestedLoop
	}
	if nJoinVars == 0 {
		// Cross product: scan the pattern once instead of once per row.
		return strategyHashJoin
	}
	if est <= inputLen*hashBuildFactor {
		return strategyHashJoin
	}
	return strategyNestedLoop
}

// runPlan is the compiled form of one run of (non-path) triple patterns:
// a shared variable table plus per-pattern constant IDs and positions.
type runPlan struct {
	vars   []string       // distinct variables, first-appearance order
	varIdx map[string]int // name -> column in the ID rows
	pats   []patPlan
	ok     bool // false: a constant term is absent from the dictionary
}

// patPlan is one pattern of a run.
type patPlan struct {
	ids     [3]rdf.ID // constant IDs; 0 where the position holds a variable
	pos     [3]int    // variable-table column per position; -1 where constant
	baseEst int       // cached match count with constants only
}

// planRun compiles a run against the graph dictionary.
func (ev *evaluator) planRun(run []*TriplePattern) *runPlan {
	rp := &runPlan{varIdx: map[string]int{}, ok: true}
	for _, tp := range run {
		pp := patPlan{pos: [3]int{-1, -1, -1}}
		for i, n := range [3]Node{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				idx, seen := rp.varIdx[n.Var]
				if !seen {
					idx = len(rp.vars)
					rp.varIdx[n.Var] = idx
					rp.vars = append(rp.vars, n.Var)
				}
				pp.pos[i] = idx
				continue
			}
			id, known := ev.g.TermID(n.Term)
			if !known {
				rp.ok = false
				return rp
			}
			pp.ids[i] = id
		}
		pp.baseEst = ev.g.CachedCountIDs(pp.ids[0], pp.ids[1], pp.ids[2])
		rp.pats = append(rp.pats, pp)
	}
	return rp
}

// idRows is a batch of intermediate rows: n rows of width IDs each, flat in
// one backing slice (ID 0 = still unbound), plus for each row the index of
// the input binding it extends.
type idRows struct {
	width   int
	vals    []rdf.ID
	parents []int32
}

func (r *idRows) n() int { return len(r.parents) }

func (r *idRows) row(i int) []rdf.ID { return r.vals[i*r.width : (i+1)*r.width] }

// evalTripleRun joins the input bindings with every pattern of the run and
// returns the extended bindings. Output order is deterministic: input order
// crossed with the deterministic MatchIDs enumeration order per pattern.
// filters are pushed-down filter expressions the cost-based planner may
// place inside the run; sureOutside names the variables surely bound before
// the run, estBound the variables bound for estimation purposes (both may
// be nil on the legacy greedy path, which never pushes filters into runs).
func (ev *evaluator) evalTripleRun(run []*TriplePattern, filters []*runFilter, sureOutside, estBound map[string]bool, input []Binding) []Binding {
	bs := ev.enterSpan("bgp")
	if bs != nil {
		bs.SetAttr("patterns", len(run))
		bs.SetAttr("rows_in", len(input))
		bs.SetAttr("workers", ev.workers)
	}
	pb, pbt := ev.profEnter("bgp", "")
	out := ev.runTriples(run, filters, sureOutside, estBound, input)
	ev.profExit(pb, pbt, len(input), len(out))
	if bs != nil {
		bs.SetAttr("rows_out", len(out))
	}
	ev.exitSpan(bs)
	return out
}

func (ev *evaluator) runTriples(run []*TriplePattern, filters []*runFilter, sureOutside, estBound map[string]bool, input []Binding) []Binding {
	if len(input) == 0 {
		return nil
	}
	ps := ev.cur.StartChild("plan")
	rp := ev.planRun(run)
	costBased := rp.ok && !ev.noReorder && ev.planner != PlannerGreedy
	var plan *bgpPlan
	var cm *costModel
	var boundCols uint64
	if costBased {
		boundCols = colsFromVars(rp, estBound)
		plan, cm = ev.planBGP(rp, run, boundCols, len(input))
		if len(filters) > 0 {
			attachFilters(plan, run, filters, sureOutside)
		}
	} else {
		plan = textualPlan(rp, ev.planner)
	}
	if ps != nil {
		// The plan phase is where the cardinality-stats cache is consulted
		// (one CachedCountIDs per pattern); surface its running totals.
		_, hits, misses := ev.g.CardCacheStats()
		ps.SetAttr("stats_cache_hits", hits)
		ps.SetAttr("stats_cache_misses", misses)
		ps.SetAttr("planner", plan.mode.String())
		if costBased {
			ps.SetAttr("order", plan.order())
			ps.SetAttr("cost", int(plan.cost))
			if plan.fbSeeded() {
				ps.SetAttr("feedback_seeded", true)
			}
		}
		ps.Finish()
	}
	if !rp.ok {
		return nil
	}
	rows := ev.convertInput(rp, input)
	// sureRun accumulates the surely-bound variables as steps execute, for
	// re-placing pushed-down filters when the tail is re-planned.
	var sureRun map[string]bool
	if costBased {
		sureRun = cloneVarSet(sureOutside)
	}
	for si := 0; si < len(plan.steps); si++ {
		if rows.n() == 0 || ev.cancel.poll() {
			return nil
		}
		if err := fault.InjectCtx(ev.cancel.ctx, "sparql.join"); err != nil {
			ev.cancel.abort(err)
			return nil
		}
		step := &plan.steps[si]
		rows = ev.evalPattern(run[step.pat], rp, &rp.pats[step.pat], rows, step)
		scanOut := rows.n()
		for _, f := range step.filters {
			if rows.n() == 0 {
				break
			}
			rows = ev.applyRunFilter(f, rp, rows, input)
		}
		if costBased {
			boundCols |= cm.patternCols(step.pat)
			for _, v := range run[step.pat].Vars() {
				sureRun[v] = true
			}
			// Adaptive re-planning: when the scan blew past its estimate by
			// the q-error factor and at least two patterns remain, re-order
			// the tail with the observed cardinality.
			if ev.replanFactor > 0 && len(plan.steps)-si-1 >= 2 &&
				scanOut >= replanMinRows &&
				float64(scanOut) > step.estOut*ev.replanFactor {
				replanTail(plan, cm, run, si, rows.n(), boundCols, sureRun)
			}
		}
	}
	if plan.replans > 0 {
		ev.prof.addReplans(plan.replans)
	}
	if rows.n() == 0 || ev.cancel.aborted() {
		return nil
	}
	return ev.materialize(rp, rows, input)
}

// applyRunFilter evaluates one pushed-down filter over the run's ID rows,
// materializing a minimal Binding (only the filter's variables) per row:
// run columns resolve through the term memo, variables bound outside the
// run read from the row's parent input binding (placement guarantees they
// are surely bound there). Rows whose expression errors or is false drop,
// matching group-level filter semantics.
func (ev *evaluator) applyRunFilter(f *runFilter, rp *runPlan, rows *idRows, input []Binding) *idRows {
	fs := ev.cur.StartChild("filter")
	if fs != nil {
		fs.SetAttr("expr", f.expr.String())
		fs.SetAttr("pushed", "in-run")
		fs.SetAttr("rows_in", rows.n())
	}
	flabel := ""
	if ev.prof != nil {
		flabel = f.expr.String()
	}
	pf, pft := ev.profEnter("filter", flabel)
	type fcol struct {
		name string
		col  int
	}
	var cols []fcol
	var outer []string
	for v := range f.vars {
		if idx, ok := rp.varIdx[v]; ok {
			cols = append(cols, fcol{v, idx})
		} else {
			outer = append(outer, v)
		}
	}
	memo := newTermMemo(ev.g)
	env := exprEnv{ev: ev}
	rowsIn := rows.n()
	out := &idRows{
		width:   rows.width,
		vals:    make([]rdf.ID, 0, len(rows.vals)),
		parents: make([]int32, 0, rowsIn),
	}
	for r := 0; r < rowsIn; r++ {
		if r%pollEvery == 0 && ev.cancel.poll() {
			break
		}
		parent := input[rows.parents[r]]
		b := make(Binding, len(cols)+len(outer))
		for _, v := range outer {
			if t, ok := parent[v]; ok {
				b[v] = t
			}
		}
		row := rows.row(r)
		for _, c := range cols {
			if row[c.col] != 0 {
				b[c.name] = memo.term(row[c.col])
			}
		}
		if v, err := env.evalBool(f.expr, b); err == nil && v {
			out.vals = append(out.vals, row...)
			out.parents = append(out.parents, rows.parents[r])
		}
	}
	ev.profExit(pf, pft, rowsIn, out.n())
	if fs != nil {
		fs.SetAttr("rows_out", out.n())
		fs.Finish()
	}
	return out
}

// convertInput resolves the run variables of each input binding to IDs.
// A row whose binding holds a term the graph has never seen (for a variable
// some pattern of the run uses) can never match and is dropped here.
func (ev *evaluator) convertInput(rp *runPlan, input []Binding) *idRows {
	width := len(rp.vars)
	rows := &idRows{
		width:   width,
		vals:    make([]rdf.ID, 0, width*len(input)),
		parents: make([]int32, 0, len(input)),
	}
	memo := newTermMemo(ev.g)
	tmp := make([]rdf.ID, width)
	for i, b := range input {
		live := true
		for j, v := range rp.vars {
			tmp[j] = 0
			t, bound := b[v]
			if !bound {
				continue
			}
			id := memo.id(t)
			if id == 0 {
				live = false
				break
			}
			tmp[j] = id
		}
		if !live {
			continue
		}
		rows.vals = append(rows.vals, tmp...)
		rows.parents = append(rows.parents, int32(i))
	}
	return rows
}

// evalPattern joins the current rows with one pattern. Variable boundness
// is classified over the full row set and the strategy chosen once; only
// the per-row work is partitioned, so the strategy (and output order) is
// independent of the worker count. tp is the source pattern, used only to
// label the trace span. step carries the plan's decisions: a planned join
// strategy is honored unless runtime boundness is mixed (a variable bound
// in only part of the rows forces per-row handling for correctness), and
// step.card is the estimate the profile's q-error measures against — the
// feedback actual on a seeded scan, the stats-cache count otherwise.
func (ev *evaluator) evalPattern(tp *TriplePattern, rp *runPlan, pp *patPlan, rows *idRows, step *planStep) *idRows {
	nJoin, mixed := 0, false
	var joinPos, freePos []int // first pattern position of each distinct var
	seen := [3]bool{}
	for i := 0; i < 3; i++ {
		idx := pp.pos[i]
		if idx < 0 || seen[i] {
			continue
		}
		for j := i + 1; j < 3; j++ {
			if pp.pos[j] == idx {
				seen[j] = true
			}
		}
		bound := 0
		for r := 0; r < rows.n(); r++ {
			if rows.vals[r*rows.width+idx] != 0 {
				bound++
			}
		}
		switch bound {
		case rows.n():
			nJoin++
			joinPos = append(joinPos, i)
		case 0:
			freePos = append(freePos, i)
		default:
			mixed = true
		}
	}
	strategy := chooseStrategy(pp.baseEst, rows.n(), nJoin, mixed)
	if step.planned && !mixed {
		// Honor the cost model's join-type choice; mixed boundness still
		// overrides it because a hash probe needs fully-bound join columns.
		strategy = step.strategy
	}
	ss := ev.cur.StartChild("scan")
	if ss != nil {
		ss.SetAttr("pattern", tp.String())
		ss.SetAttr("est", step.card)
		ss.SetAttr("strategy", strategy.String())
		ss.SetAttr("rows_in", rows.n())
		if step.fbSeeded {
			ss.SetAttr("feedback", true)
		}
	}
	plabel := ""
	if ev.prof != nil {
		plabel = tp.String()
	}
	psc, psct := ev.profEnter("scan", plabel)
	// The scan's estimate is what the planner priced it with: the
	// cardinality-stats-cache count for the pattern's constant positions, or
	// the feedback-observed actual on a seeded scan — so q-error measures
	// the planner's own input either way.
	ev.prof.addEst(step.card)
	ev.prof.setStrategy(strategy.String())
	ev.prof.setFbCtx(step.fbCtx)
	if step.fbSeeded {
		ev.prof.setFeedback()
	}
	// Each pattern opens a fresh row-budget window: the budget caps the
	// size of any one intermediate binding set, counted live across the
	// worker partitions while this join produces.
	ev.cancel.resetRows()
	var out *idRows
	if strategy == strategyHashJoin {
		ht := ev.buildHashRun(pp, joinPos)
		out = ev.runPartitioned(rows, func(lo, hi int) *idRows {
			return ev.probeHashRun(pp, ht, joinPos, freePos, rows, lo, hi)
		})
	} else {
		out = ev.runPartitioned(rows, func(lo, hi int) *idRows {
			return ev.nestedLoopRun(pp, rows, lo, hi)
		})
	}
	ev.profExit(psc, psct, rows.n(), out.n())
	if ss != nil {
		ss.SetAttr("rows_out", out.n())
		ss.Finish()
	}
	return out
}

// runPartitioned splits the rows into contiguous chunks, runs exec on each
// (concurrently when the batch is large enough) and concatenates the chunk
// results in input order. exec must be safe for concurrent invocation on
// distinct ranges.
func (ev *evaluator) runPartitioned(rows *idRows, exec func(lo, hi int) *idRows) *idRows {
	n := rows.n()
	if ev.workers <= 1 || n < parallelThreshold {
		return exec(0, n)
	}
	chunks := par.Chunks(n, ev.workers)
	parts := make([]*idRows, len(chunks))
	par.Do(len(chunks), ev.workers, func(i int) {
		parts[i] = exec(chunks[i][0], chunks[i][1])
	})
	total := 0
	for _, p := range parts {
		total += p.n()
	}
	out := &idRows{
		width:   rows.width,
		vals:    make([]rdf.ID, 0, total*rows.width),
		parents: make([]int32, 0, total),
	}
	for _, p := range parts {
		out.vals = append(out.vals, p.vals...)
		out.parents = append(out.parents, p.parents...)
	}
	return out
}

// nestedLoopRun evaluates the pattern with one ID index lookup per row:
// bound columns tighten the pattern to its most selective access path. It
// also covers mixed boundness (a variable bound in only part of the rows).
func (ev *evaluator) nestedLoopRun(pp *patPlan, rows *idRows, lo, hi int) *idRows {
	out := &idRows{
		width:   rows.width,
		vals:    make([]rdf.ID, 0, (hi-lo)*rows.width),
		parents: make([]int32, 0, hi-lo),
	}
	produced := 0           // rows appended since the last budget flush
	var matches [][3]rdf.ID // scratch, reused across rows
	for r := lo; r < hi; r++ {
		if (r-lo)%64 == 0 && ev.cancel.aborted() {
			return out
		}
		row := rows.row(r)
		lookup := pp.ids
		for i := 0; i < 3; i++ {
			if pp.pos[i] >= 0 {
				lookup[i] = row[pp.pos[i]]
			}
		}
		matches = matches[:0]
		ev.g.MatchIDs(lookup[0], lookup[1], lookup[2], func(s, p, o rdf.ID) bool {
			// One row of an unselective pattern can match a large slice of
			// the graph; keep the scan itself interruptible.
			if len(matches)%pollEvery == pollEvery-1 && ev.cancel.poll() {
				return false
			}
			matches = append(matches, [3]rdf.ID{s, p, o})
			return true
		})
	match:
		for _, m := range matches {
			// Repeated variables still free in this row must agree.
			for i := 0; i < 3; i++ {
				for j := i + 1; j < 3; j++ {
					if pp.pos[i] >= 0 && pp.pos[i] == pp.pos[j] && lookup[i] == 0 && m[i] != m[j] {
						continue match
					}
				}
			}
			base := len(out.vals)
			out.vals = append(out.vals, row...)
			for i := 0; i < 3; i++ {
				if pp.pos[i] >= 0 && lookup[i] == 0 {
					out.vals[base+pp.pos[i]] = m[i]
				}
			}
			out.parents = append(out.parents, rows.parents[r])
			if produced++; produced >= 256 {
				if ev.cancel.addRows(produced, ev.limits.MaxIntermediateRows) {
					return out
				}
				produced = 0
			}
		}
	}
	ev.cancel.addRows(produced, ev.limits.MaxIntermediateRows)
	return out
}

// hashRun is the build side of a hash join: every match of the pattern
// (constants only), bucketed by the IDs at the join-variable positions.
// Bucket lists inherit MatchIDs' deterministic scan order.
type hashRun map[[3]rdf.ID][][3]rdf.ID

// buildHashRun scans the pattern once and buckets the matches by joinPos.
func (ev *evaluator) buildHashRun(pp *patPlan, joinPos []int) hashRun {
	ht := hashRun{}
	scanned := 0
	ev.g.MatchIDs(pp.ids[0], pp.ids[1], pp.ids[2], func(s, p, o rdf.ID) bool {
		if scanned++; scanned%pollEvery == 0 && ev.cancel.poll() {
			return false
		}
		m := [3]rdf.ID{s, p, o}
		// Repeated variables must agree within one match.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if pp.pos[i] >= 0 && pp.pos[i] == pp.pos[j] && m[i] != m[j] {
					return true
				}
			}
		}
		var key [3]rdf.ID
		for k, posI := range joinPos {
			key[k] = m[posI]
		}
		ht[key] = append(ht[key], m)
		return true
	})
	return ht
}

// probeHashRun probes the table with each row's join-column IDs and extends
// the row with the free columns of every bucket match. A cross-product run
// lands here (every probe hits the full build side), so the inner loop
// accounts produced rows against the budget and polls for cancellation —
// this is where a pathological query dies early.
func (ev *evaluator) probeHashRun(pp *patPlan, ht hashRun, joinPos, freePos []int, rows *idRows, lo, hi int) *idRows {
	out := &idRows{
		width:   rows.width,
		vals:    make([]rdf.ID, 0, (hi-lo)*rows.width),
		parents: make([]int32, 0, hi-lo),
	}
	produced := 0
	for r := lo; r < hi; r++ {
		if (r-lo)%64 == 0 && ev.cancel.aborted() {
			return out
		}
		row := rows.row(r)
		var key [3]rdf.ID
		for k, posI := range joinPos {
			key[k] = row[pp.pos[posI]]
		}
		for _, m := range ht[key] {
			base := len(out.vals)
			out.vals = append(out.vals, row...)
			for _, posI := range freePos {
				out.vals[base+pp.pos[posI]] = m[posI]
			}
			out.parents = append(out.parents, rows.parents[r])
			if produced++; produced >= 256 {
				if ev.cancel.addRows(produced, ev.limits.MaxIntermediateRows) {
					return out
				}
				produced = 0
			}
		}
	}
	ev.cancel.addRows(produced, ev.limits.MaxIntermediateRows)
	return out
}

// materialize turns the surviving ID rows back into Bindings: one clone of
// the parent input binding per row, extended with the run's newly bound
// variables. This is the only per-row map allocation of the whole run, and
// it is partitioned across the workers (the clone is the dominant cost).
// Projection pushdown happens here: a run variable whose global reference
// count equals its in-run position count is referenced nowhere else in the
// query — not by later patterns, filters, projection, modifiers or nested
// groups — so its bindings are dead weight and are skipped.
func (ev *evaluator) materialize(rp *runPlan, rows *idRows, input []Binding) []Binding {
	skip := ev.pruneableRunVars(rp)
	build := func(lo, hi int, out []Binding, memo *termMemo) []Binding {
		for r := lo; r < hi; r++ {
			if (r-lo)%256 == 0 && ev.cancel.aborted() {
				return out
			}
			parent := input[rows.parents[r]]
			nb := make(Binding, len(parent)+len(rp.vars))
			for k, v := range parent {
				nb[k] = v
			}
			row := rows.row(r)
			for j, name := range rp.vars {
				if row[j] == 0 || (skip != nil && skip[j]) {
					continue
				}
				if _, exists := nb[name]; !exists {
					nb[name] = memo.term(row[j])
				}
			}
			out = append(out, nb)
		}
		return out
	}
	n := rows.n()
	if ev.workers <= 1 || n < parallelThreshold {
		return build(0, n, make([]Binding, 0, n), newTermMemo(ev.g))
	}
	chunks := par.Chunks(n, ev.workers)
	parts := make([][]Binding, len(chunks))
	par.Do(len(chunks), ev.workers, func(i int) {
		lo, hi := chunks[i][0], chunks[i][1]
		parts[i] = build(lo, hi, make([]Binding, 0, hi-lo), newTermMemo(ev.g))
	})
	out := make([]Binding, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// pruneableRunVars returns, per run-plan column, whether the variable can
// be dropped at materialization: its total reference count across the whole
// query (countVarUses, set by execSelect) equals its position count within
// this run. Nil when pruning is off — no SELECT in scope (ASK/CONSTRUCT/
// DESCRIBE evaluate groups directly), SELECT *, or nothing pruneable.
func (ev *evaluator) pruneableRunVars(rp *runPlan) []bool {
	if ev.varUses == nil || ev.varStar {
		return nil
	}
	counts := make([]int, len(rp.vars))
	for _, pp := range rp.pats {
		for _, idx := range pp.pos {
			if idx >= 0 {
				counts[idx]++
			}
		}
	}
	var skip []bool
	for j, name := range rp.vars {
		if total, ok := ev.varUses[name]; ok && total == counts[j] {
			if skip == nil {
				skip = make([]bool, len(rp.vars))
			}
			skip[j] = true
		}
	}
	return skip
}

// termMemo caches dictionary lookups in both directions for one batch, so
// repeated values don't pay the graph's read lock per row.
type termMemo struct {
	g   *rdf.Graph
	ids map[rdf.Term]rdf.ID // 0 = not in the dictionary
	ts  map[rdf.ID]rdf.Term
}

func newTermMemo(g *rdf.Graph) *termMemo {
	return &termMemo{g: g, ids: map[rdf.Term]rdf.ID{}, ts: map[rdf.ID]rdf.Term{}}
}

func (m *termMemo) id(t rdf.Term) rdf.ID {
	if id, hit := m.ids[t]; hit {
		return id
	}
	id, _ := m.g.TermID(t)
	m.ids[t] = id
	return id
}

func (m *termMemo) term(id rdf.ID) rdf.Term {
	if t, hit := m.ts[id]; hit {
		return t
	}
	t := m.g.TermOf(id)
	m.ts[id] = t
	return t
}
