package sparql

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

// invoicesTTL is the running example of Fig 4.1: invoices with branch,
// product, date and quantity.
const invoicesTTL = `@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:i1 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 200 ; ex:delivers ex:coca ; ex:hasDate "2021-01-10"^^xsd:date .
ex:i2 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 100 ; ex:delivers ex:pepsi ; ex:hasDate "2021-01-20"^^xsd:date .
ex:i3 ex:takesPlaceAt ex:branch2 ; ex:inQuantity 200 ; ex:delivers ex:coca ; ex:hasDate "2021-02-05"^^xsd:date .
ex:i4 ex:takesPlaceAt ex:branch2 ; ex:inQuantity 400 ; ex:delivers ex:coca ; ex:hasDate "2021-02-14"^^xsd:date .
ex:i5 ex:takesPlaceAt ex:branch3 ; ex:inQuantity 100 ; ex:delivers ex:fanta ; ex:hasDate "2021-03-01"^^xsd:date .
ex:i6 ex:takesPlaceAt ex:branch3 ; ex:inQuantity 400 ; ex:delivers ex:coca ; ex:hasDate "2021-03-02"^^xsd:date .
ex:i7 ex:takesPlaceAt ex:branch3 ; ex:inQuantity 100 ; ex:delivers ex:pepsi ; ex:hasDate "2021-01-30"^^xsd:date .
ex:coca ex:brand ex:CocaCola .
ex:fanta ex:brand ex:CocaCola .
ex:pepsi ex:brand ex:PepsiCo .
`

func invoices(t testing.TB) *rdf.Graph {
	t.Helper()
	g, err := rdf.LoadTurtleString(invoicesTTL)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func get(t *testing.T, res *Results, keyVar, keyLocal, valVar string) rdf.Term {
	t.Helper()
	for _, row := range res.Rows {
		if k, ok := row[keyVar]; ok && k.LocalName() == keyLocal {
			return row[valVar]
		}
	}
	t.Fatalf("no row with ?%s = %s in\n%s", keyVar, keyLocal, res)
	return rdf.Term{}
}

func TestSelectSimpleBGP(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?b WHERE { ?i ex:takesPlaceAt ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
}

func TestSelectJoin(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:delivers ?p . ?p ex:brand ex:CocaCola }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 { // i1,i3,i4,i6 (coca) + i5 (fanta)
		t.Fatalf("rows = %d, want 5\n%s", res.Len(), res)
	}
}

// TestPaperSimpleQuery is §4.2.1: total quantities per branch.
func TestPaperSimpleQuery(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?x2 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
}
GROUP BY ?x2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d, want 3\n%s", res.Len(), res)
	}
	want := map[string]int64{"branch1": 300, "branch2": 600, "branch3": 600}
	for b, q := range want {
		v := get(t, res, "x2", b, "sum_x3")
		if n, _ := v.Int(); n != q {
			t.Errorf("SUM for %s = %v, want %d", b, v, q)
		}
	}
}

// TestPaperAttributeRestrictedURI is §4.2.2 (URI restriction).
func TestPaperAttributeRestrictedURI(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?x2 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
  ?x1 ex:takesPlaceAt ex:branch1 .
}
GROUP BY ?x2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("groups = %d, want 1", res.Len())
	}
	if n, _ := res.Rows[0]["sum_x3"].Int(); n != 300 {
		t.Errorf("sum = %v", res.Rows[0]["sum_x3"])
	}
}

// TestPaperAttributeRestrictedLiteral is §4.2.2 (FILTER restriction).
func TestPaperAttributeRestrictedLiteral(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x2 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
  FILTER(?x3 >= xsd:integer("200")) .
}
GROUP BY ?x2`)
	if err != nil {
		t.Fatal(err)
	}
	// branch1: 200; branch2: 200+400; branch3: 400
	want := map[string]int64{"branch1": 200, "branch2": 600, "branch3": 400}
	for b, q := range want {
		if n, _ := get(t, res, "x2", b, "sum_x3").Int(); n != q {
			t.Errorf("sum %s = %d, want %d", b, n, q)
		}
	}
}

// TestPaperResultRestricted is §4.2.3: HAVING.
func TestPaperResultRestricted(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?x2 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
}
GROUP BY ?x2
HAVING (SUM(?x3) > 300)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // branch2, branch3 (600 each)
		t.Fatalf("groups = %d, want 2\n%s", res.Len(), res)
	}
}

// TestPaperComposition is §4.2.4: totals per brand (composition).
func TestPaperComposition(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?x3 SUM(?x4)
WHERE {
  ?x1 ex:delivers ?x2 .
  ?x2 ex:brand ?x3 .
  ?x1 ex:inQuantity ?x4 .
}
GROUP BY ?x3`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"CocaCola": 1300, "PepsiCo": 200}
	for b, q := range want {
		if n, _ := get(t, res, "x3", b, "sum_x4").Int(); n != q {
			t.Errorf("brand %s = %d, want %d", b, n, q)
		}
	}
}

// TestPaperDerivedAttribute is §4.2.4: totals per month (derived attribute).
func TestPaperDerivedAttribute(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT (MONTH(?x2) AS ?m) SUM(?x3)
WHERE {
  ?x1 ex:hasDate ?x2 .
  ?x1 ex:inQuantity ?x3 .
}
GROUP BY MONTH(?x2)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("months = %d, want 3\n%s", res.Len(), res)
	}
	want := map[string]int64{"1": 400, "2": 600, "3": 500}
	for m, q := range want {
		if n, _ := get(t, res, "m", m, "sum_x3").Int(); n != q {
			t.Errorf("month %s = %d, want %d", m, n, q)
		}
	}
}

// TestPaperPairing is §4.2.4: totals per branch and product.
func TestPaperPairing(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?x2 ?x4 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
  ?x1 ex:delivers ?x4 .
}
GROUP BY ?x2 ?x4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 { // b1:{coca,pepsi} b2:{coca} b3:{fanta,coca,pepsi}
		t.Fatalf("groups = %d, want 6\n%s", res.Len(), res)
	}
}

// TestPaperFullExample is the combined example of §4.2.5.
func TestPaperFullExample(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x2 ?x5 SUM(?x3)
WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
  ?x1 ex:delivers ?x4 .
  ?x4 ex:brand ?x5 .
  ?x1 ex:hasDate ?x6 .
  FILTER((MONTH(?x6) = 1) && (?x3 >= xsd:integer("2")))
}
GROUP BY ?x2 ?x5
HAVING (SUM(?x3) > 150)`)
	if err != nil {
		t.Fatal(err)
	}
	// January invoices: i1 (b1, coca 200), i2 (b1, pepsi 100), i7 (b3, pepsi 100).
	// Groups: (b1, CocaCola)=200, (b1, PepsiCo)=100, (b3, PepsiCo)=100.
	// HAVING > 150 leaves only (b1, CocaCola).
	if res.Len() != 1 {
		t.Fatalf("groups = %d, want 1\n%s", res.Len(), res)
	}
	if res.Rows[0]["x2"].LocalName() != "branch1" || res.Rows[0]["x5"].LocalName() != "CocaCola" {
		t.Errorf("wrong group: %v", res.Rows[0])
	}
}

func TestAggregatesAll(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT (COUNT(?x3) AS ?c) (SUM(?x3) AS ?s) (AVG(?x3) AS ?a)
       (MIN(?x3) AS ?mn) (MAX(?x3) AS ?mx)
       (COUNT(DISTINCT ?x3) AS ?cd)
       (GROUP_CONCAT(DISTINCT ?x3; SEPARATOR=",") AS ?gc)
       (SAMPLE(?x3) AS ?sm)
WHERE { ?x1 ex:inQuantity ?x3 }`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	checks := map[string]string{
		"c": "7", "s": "1500", "mn": "100", "mx": "400", "cd": "3",
	}
	for v, want := range checks {
		if row[v].Value != want {
			t.Errorf("?%s = %q, want %q", v, row[v].Value, want)
		}
	}
	if f, _ := row["a"].Float(); f < 214.2 || f > 214.3 {
		t.Errorf("avg = %v", row["a"])
	}
	if !strings.Contains(row["gc"].Value, "200") {
		t.Errorf("group_concat = %q", row["gc"].Value)
	}
	if row["sm"].IsZero() {
		t.Error("sample empty")
	}
}

func TestCountStarOverEmptyMatch(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT (COUNT(*) AS ?n) WHERE { ?x ex:nonexistent ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["n"].Value != "0" {
		t.Fatalf("COUNT(*) over empty = %v", res.Rows)
	}
}

func TestOptional(t *testing.T) {
	g := invoices(t)
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/i1"), P: rdf.NewIRI("http://e/note"), O: rdf.NewString("rush")})
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?n WHERE { ?i ex:takesPlaceAt ?b . OPTIONAL { ?i ex:note ?n } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
	bound := 0
	for _, row := range res.Rows {
		if _, ok := row["n"]; ok {
			bound++
		}
	}
	if bound != 1 {
		t.Errorf("bound notes = %d, want 1", bound)
	}
}

func TestUnion(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE {
  { ?i ex:delivers ex:fanta } UNION { ?i ex:delivers ex:pepsi }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // i5 + i2,i7
		t.Fatalf("rows = %d, want 3", res.Len())
	}
}

func TestMinusAndNotExists(t *testing.T) {
	g := invoices(t)
	for _, src := range []string{
		`PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:takesPlaceAt ?b . MINUS { ?i ex:delivers ex:coca } }`,
		`PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:takesPlaceAt ?b . FILTER NOT EXISTS { ?i ex:delivers ex:coca } }`,
	} {
		res, err := Select(g, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 3 { // i2, i5? no — i5 delivers fanta: i2,i5,i7
			t.Fatalf("rows = %d, want 3 for %s\n%s", res.Len(), src, res)
		}
	}
}

func TestBindAndValues(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?dbl WHERE {
  VALUES ?i { ex:i1 ex:i2 }
  ?i ex:inQuantity ?q .
  BIND(?q * 2 AS ?dbl)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if v := get(t, res, "i", "i1", "dbl"); v.Value != "400" {
		t.Errorf("dbl = %v", v)
	}
}

func TestSubquerySemantics(t *testing.T) {
	g := invoices(t)
	// Branches whose total exceeds the overall average quantity * count
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b ?total WHERE {
  { SELECT ?b (SUM(?q) AS ?total) WHERE { ?i ex:takesPlaceAt ?b . ?i ex:inQuantity ?q } GROUP BY ?b }
  FILTER(?total >= 600)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", res.Len(), res)
	}
}

func TestPropertyPathSeq(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:delivers/ex:brand ex:PepsiCo }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // i2, i7
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestPropertyPathInverseAltMod(t *testing.T) {
	ttl := `@prefix ex: <http://e/> .
ex:a ex:parent ex:b .
ex:b ex:parent ex:c .
ex:c ex:parent ex:d .
ex:x ex:mother ex:y .
`
	g := rdf.MustLoadTurtle(ttl)
	// inverse
	res, err := Select(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:b ^ex:parent ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["x"].LocalName() != "a" {
		t.Fatalf("inverse: %s", res)
	}
	// one-or-more
	res, err = Select(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:a ex:parent+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("+: rows = %d, want 3", res.Len())
	}
	// zero-or-more includes a itself
	res, err = Select(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:a ex:parent* ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("*: rows = %d, want 4", res.Len())
	}
	// alternative
	res, err = Select(g, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:parent|ex:mother ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("|: rows = %d, want 4", res.Len())
	}
	// zero-or-one
	res, err = Select(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:a ex:parent? ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // a itself and b
		t.Fatalf("?: rows = %d, want 2", res.Len())
	}
}

func TestDistinctOrderLimitOffset(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT DISTINCT ?b WHERE { ?i ex:takesPlaceAt ?b } ORDER BY ?b`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("distinct rows = %d", res.Len())
	}
	if res.Rows[0]["b"].LocalName() != "branch1" {
		t.Errorf("order: %v", res.Rows)
	}
	res, err = Select(g, `PREFIX ex: <http://e/>
SELECT DISTINCT ?b WHERE { ?i ex:takesPlaceAt ?b } ORDER BY DESC(?b) LIMIT 1 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["b"].LocalName() != "branch2" {
		t.Fatalf("limit/offset: %s", res)
	}
}

func TestOrderByNumeric(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?q WHERE { ?i ex:inQuantity ?q } ORDER BY DESC(?q) ?i`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0]["q"].Int(); v != 400 {
		t.Errorf("first row q = %v", res.Rows[0]["q"])
	}
	if v, _ := res.Rows[6]["q"].Int(); v != 100 {
		t.Errorf("last row q = %v", res.Rows[6]["q"])
	}
}

func TestSelectStar(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT * WHERE { ?i ex:delivers ex:fanta . ?i ex:inQuantity ?q }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 2 || res.Len() != 1 {
		t.Fatalf("star: vars=%v rows=%d", res.Vars, res.Len())
	}
}

func TestSameVariableTwiceInPattern(t *testing.T) {
	ttl := `@prefix ex: <http://e/> .
ex:a ex:knows ex:a .
ex:a ex:knows ex:b .
`
	g := rdf.MustLoadTurtle(ttl)
	res, err := Select(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:knows ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["x"].LocalName() != "a" {
		t.Fatalf("self-loop: %s", res)
	}
}

func TestAsk(t *testing.T) {
	g := invoices(t)
	yes, err := Ask(g, `PREFIX ex: <http://e/> ASK { ex:i1 ex:inQuantity 200 }`)
	if err != nil || !yes {
		t.Fatalf("ask true: %v %v", yes, err)
	}
	no, err := Ask(g, `PREFIX ex: <http://e/> ASK { ex:i1 ex:inQuantity 999 }`)
	if err != nil || no {
		t.Fatalf("ask false: %v %v", no, err)
	}
}

func TestConstruct(t *testing.T) {
	g := invoices(t)
	out, err := Construct(g, `PREFIX ex: <http://e/>
CONSTRUCT { ?i ex:brandOf ?b } WHERE { ?i ex:delivers/ex:brand ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 7 {
		t.Fatalf("constructed %d triples, want 7", out.Len())
	}
	if !out.Has(rdf.Triple{
		S: rdf.NewIRI("http://e/i1"),
		P: rdf.NewIRI("http://e/brandOf"),
		O: rdf.NewIRI("http://e/CocaCola"),
	}) {
		t.Error("constructed triple missing")
	}
}

func TestDescribe(t *testing.T) {
	g := invoices(t)
	// Direct IRI.
	out, err := Describe(g, `PREFIX ex: <http://e/> DESCRIBE ex:i1`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // i1's four properties
		t.Fatalf("described %d triples, want 4\n%v", out.Len(), out.Triples())
	}
	// Variable with WHERE.
	out, err = Describe(g, `PREFIX ex: <http://e/>
DESCRIBE ?p WHERE { ?p ex:brand ex:PepsiCo }`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(rdf.Triple{
		S: rdf.NewIRI("http://e/pepsi"), P: rdf.NewIRI("http://e/brand"),
		O: rdf.NewIRI("http://e/PepsiCo"),
	}) {
		t.Errorf("pepsi description missing: %v", out.Triples())
	}
	// Blank-node closure.
	g2 := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:detail [ ex:k "v" ] .
`)
	out, err = Describe(g2, `PREFIX ex: <http://e/> DESCRIBE ex:a`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("blank closure: %v", out.Triples())
	}
	// Errors.
	if _, err := Describe(g, `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Error("SELECT accepted by Describe")
	}
	if _, err := Parse(`DESCRIBE`); err == nil {
		t.Error("bare DESCRIBE accepted")
	}
}

func TestFilterErrorIsFalse(t *testing.T) {
	g := invoices(t)
	// ?b is an IRI; YEAR(?b) errors; the row must be filtered out, not crash.
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:takesPlaceAt ?b . FILTER(YEAR(?b) = 2021) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %d, want 0", res.Len())
	}
}

func TestThreeValuedLogic(t *testing.T) {
	g := invoices(t)
	// (error || true) must be true: unbound ?nope errors, second operand true.
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:delivers ex:fanta . FILTER(YEAR(?i) = 1 || true) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (error||true should hold)", res.Len())
	}
	// (error && false) must be false, i.e. filtered.
	res, err = Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:delivers ex:fanta . FILTER(YEAR(?i) = 1 && false) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %d, want 0", res.Len())
	}
}

func TestBuiltinsInSelect(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i (YEAR(?d) AS ?y) (STR(?d) AS ?s) WHERE { ?i ex:hasDate ?d } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row["y"].Value != "2021" {
		t.Errorf("year = %v", row["y"])
	}
	if !strings.HasPrefix(row["s"].Value, "2021-") {
		t.Errorf("str = %v", row["s"])
	}
}

func TestResultsCSVAndJSON(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b (SUM(?q) AS ?total) WHERE { ?i ex:takesPlaceAt ?b . ?i ex:inQuantity ?q } GROUP BY ?b`)
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "b,total\n") {
		t.Errorf("csv header: %q", csvBuf.String())
	}
	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONResults(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Len() || len(back.Vars) != 2 {
		t.Fatalf("json roundtrip: %d rows", back.Len())
	}
	// values survive with datatypes
	found := false
	for _, row := range back.Rows {
		if row["b"] == rdf.NewIRI("http://e/branch1") {
			found = true
			if n, _ := row["total"].Int(); n != 300 {
				t.Errorf("roundtrip total = %v", row["total"])
			}
		}
	}
	if !found {
		t.Error("branch1 lost in JSON roundtrip")
	}
}

func TestJoinOrderingCorrectness(t *testing.T) {
	// Whatever the join order, results must be identical. Build a graph
	// where textual order is pathological (unselective pattern first).
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE {
  ?i ?p ?o .
  ?i ex:delivers ex:fanta .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 { // i5 has 4 properties
		t.Fatalf("rows = %d, want 4\n%s", res.Len(), res)
	}
}

func BenchmarkSelectGroupBy(b *testing.B) {
	g := invoices(b)
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?x2 SUM(?x3) WHERE { ?x1 ex:takesPlaceAt ?x2 . ?x1 ex:inQuantity ?x3 } GROUP BY ?x2`)
	b.ResetTimer()
	for b.Loop() {
		if _, err := ExecSelect(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinOrdering compares selectivity-ordered evaluation with textual
// order (ablation #3 in DESIGN.md) by running a query whose textual order is
// maximally unselective.
func BenchmarkJoinOrdering(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString(fmt.Sprintf("ex:s%d ex:p ex:o%d .\n", i, i%100))
	}
	sb.WriteString("ex:s1 ex:rare ex:needle .\n")
	g := rdf.MustLoadTurtle(sb.String())
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:p ?o . ?s ex:rare ex:needle }`)
	b.Run("ordered", func(b *testing.B) {
		for b.Loop() {
			if _, err := ExecSelect(g, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("textual", func(b *testing.B) {
		for b.Loop() {
			if _, err := ExecSelectOpts(g, q, Options{NoReorder: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestNoReorderSameResults: the ablation switch must not change semantics.
func TestNoReorderSameResults(t *testing.T) {
	g := invoices(t)
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?i ?b WHERE { ?i ?p ?o . ?i ex:takesPlaceAt ?b . ?i ex:delivers ex:coca }`)
	a, err := ExecSelect(g, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecSelectOpts(g, q, Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Sort()
	b.Sort()
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for _, v := range a.Vars {
			if a.Rows[i][v] != b.Rows[i][v] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}
