package sparql

import (
	"context"
	"errors"
	"time"

	"rdfanalytics/internal/obs"
)

// Metric handles for the evaluator's phase timings, resolved once at
// package init so the hot path pays only atomic adds. The phases mirror
// the pipeline the trace spans describe: parse → match (BGP joins and
// filters) → aggregate/project → modifiers.
var (
	phaseParse     = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "parse")
	phaseMatch     = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "match")
	phaseAggregate = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "aggregate")
	phaseProject   = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "project")
	phaseModifiers = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "modifiers")
	execSeconds    = obs.Default.Histogram("rdfa_sparql_exec_seconds", nil)
	queriesParsed  = obs.Default.Counter("rdfa_sparql_queries_parsed_total")

	// Abort outcomes: every evaluation that ends early is classified as a
	// deadline expiry, an explicit cancellation, or a resource-budget kill.
	queriesTimeout   = obs.Default.Counter("rdfa_sparql_queries_timeout_total")
	queriesCancelled = obs.Default.Counter("rdfa_sparql_queries_cancelled_total")
	queriesBudget    = obs.Default.Counter("rdfa_sparql_queries_budget_exceeded_total")
)

// AbortReason classifies an evaluation error into the metric/annotation
// taxonomy: "timeout", "cancelled", "budget", or "" for ordinary errors.
func AbortReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget"
	default:
		return ""
	}
}

// observeAbort counts an aborted evaluation and annotates the trace root,
// so /metrics and /api/trace both show why a query died.
func observeAbort(root *obs.Span, err error) {
	reason := AbortReason(err)
	switch reason {
	case "timeout":
		queriesTimeout.Inc()
	case "cancelled":
		queriesCancelled.Inc()
	case "budget":
		queriesBudget.Inc()
	default:
		return
	}
	if root != nil {
		root.SetAttr("aborted", reason)
		root.SetAttr("abort_error", err.Error())
	}
}

// enterSpan opens a child span under the evaluator's current span and makes
// it current. Returns nil (and changes nothing) when tracing is off.
func (ev *evaluator) enterSpan(name string) *obs.Span {
	if ev.cur == nil {
		return nil
	}
	s := ev.cur.StartChild(name)
	if s != nil {
		ev.cur = s
	}
	return s
}

// exitSpan finishes a span opened by enterSpan and pops back to its parent.
func (ev *evaluator) exitSpan(s *obs.Span) {
	if s == nil {
		return
	}
	s.Finish()
	ev.cur = s.Parent()
}

// observeSince records a phase duration; shared shape for all phase sites.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
