package sparql

import (
	"time"

	"rdfanalytics/internal/obs"
)

// Metric handles for the evaluator's phase timings, resolved once at
// package init so the hot path pays only atomic adds. The phases mirror
// the pipeline the trace spans describe: parse → match (BGP joins and
// filters) → aggregate/project → modifiers.
var (
	phaseParse     = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "parse")
	phaseMatch     = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "match")
	phaseAggregate = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "aggregate")
	phaseProject   = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "project")
	phaseModifiers = obs.Default.Histogram("rdfa_sparql_query_phase_seconds", nil, "phase", "modifiers")
	execSeconds    = obs.Default.Histogram("rdfa_sparql_exec_seconds", nil)
	queriesParsed  = obs.Default.Counter("rdfa_sparql_queries_parsed_total")
)

// enterSpan opens a child span under the evaluator's current span and makes
// it current. Returns nil (and changes nothing) when tracing is off.
func (ev *evaluator) enterSpan(name string) *obs.Span {
	if ev.cur == nil {
		return nil
	}
	s := ev.cur.StartChild(name)
	if s != nil {
		ev.cur = s
	}
	return s
}

// exitSpan finishes a span opened by enterSpan and pops back to its parent.
func (ev *evaluator) exitSpan(s *obs.Span) {
	if s == nil {
		return
	}
	s.Finish()
	ev.cur = s.Parent()
}

// observeSince records a phase duration; shared shape for all phase sites.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
