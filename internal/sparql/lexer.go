package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokKeyword
	tokVar     // ?x or $x (name without sigil)
	tokIRI     // <...> (expanded value)
	tokPName   // prefix:local (raw, expansion happens in parser)
	tokLiteral // string literal body
	tokNumber  // numeric literal lexical form
	tokPunct   // single/multi char punctuation: { } ( ) . ; , = != <= >= < > && || ! + - * / ^ | ?
	tokLangTag // @en
	tokDTSep   // ^^
	tokA       // the keyword 'a'
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokVar:
		return "?" + t.text
	case tokIRI:
		return "<" + t.text + ">"
	default:
		return t.text
	}
}

// sparqlKeywords is the set of case-insensitive reserved words recognized by
// the lexer. Everything else alphabetic becomes a PName candidate.
var sparqlKeywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "REDUCED": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "PREFIX": true, "BASE": true,
	"AS": true, "FILTER": true, "OPTIONAL": true, "UNION": true, "MINUS": true,
	"BIND": true, "VALUES": true, "UNDEF": true, "ASK": true,
	"CONSTRUCT": true, "DESCRIBE": true, "FROM": true, "NAMED": true,
	"EXISTS": true, "NOT": true, "IN": true, "TRUE": true, "FALSE": true,
	"SEPARATOR": true, "GRAPH": true,
	// SPARQL Update keywords.
	"INSERT": true, "DELETE": true, "DATA": true, "CLEAR": true, "ALL": true,
}

// aggregateNames recognizes aggregate function keywords.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"GROUP_CONCAT": true, "SAMPLE": true,
}

// builtinNames recognizes non-aggregate builtin call keywords.
var builtinNames = map[string]bool{
	"STR": true, "LANG": true, "LANGMATCHES": true, "DATATYPE": true,
	"BOUND": true, "IRI": true, "URI": true, "BNODE": true, "RAND": true,
	"ABS": true, "CEIL": true, "FLOOR": true, "ROUND": true, "CONCAT": true,
	"STRLEN": true, "UCASE": true, "LCASE": true, "ENCODE_FOR_URI": true,
	"CONTAINS": true, "STRSTARTS": true, "STRENDS": true, "STRBEFORE": true,
	"STRAFTER": true, "YEAR": true, "MONTH": true, "DAY": true, "HOURS": true,
	"MINUTES": true, "SECONDS": true, "TIMEZONE": true, "TZ": true,
	"NOW": true, "UUID": true, "STRUUID": true, "MD5": true, "SHA1": true,
	"SHA256": true, "COALESCE": true, "IF": true, "STRLANG": true,
	"STRDT": true, "SAMETERM": true, "ISIRI": true, "ISURI": true,
	"ISBLANK": true, "ISLITERAL": true, "ISNUMERIC": true, "REGEX": true,
	"SUBSTR": true, "REPLACE": true,
}

type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sparql: line %d col %d: %s", e.line, e.col, e.msg)
}

type lexer struct {
	src       []rune
	pos       int
	line, col int
	toks      []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return &lexError{line: l.line, col: l.col, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) cur() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) emit(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		r := l.cur()
		line, col := l.line, l.col
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.pos < len(l.src) && l.cur() != '\n' {
				l.advance()
			}
		case r == '?' || r == '$':
			// A variable only if followed by a name char; bare '?' is the
			// zero-or-one path modifier.
			if nxt := l.at(1); unicode.IsLetter(nxt) || unicode.IsDigit(nxt) || nxt == '_' {
				l.advance()
				name := l.lexName()
				l.emit(tokVar, name, line, col)
			} else {
				l.advance()
				l.emit(tokPunct, "?", line, col)
			}
		case r == '<':
			// IRI or comparison operator: IRI when followed by a non-space,
			// non-'=' run ending in '>'.
			if l.looksLikeIRI() {
				iri, err := l.lexIRI()
				if err != nil {
					return err
				}
				l.emit(tokIRI, iri, line, col)
			} else {
				l.advance()
				if l.cur() == '=' {
					l.advance()
					l.emit(tokPunct, "<=", line, col)
				} else {
					l.emit(tokPunct, "<", line, col)
				}
			}
		case r == '"' || r == '\'':
			s, err := l.lexString()
			if err != nil {
				return err
			}
			l.emit(tokLiteral, s, line, col)
		case r == '@':
			l.advance()
			var b strings.Builder
			for l.pos < len(l.src) {
				c := l.cur()
				if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '-' {
					b.WriteRune(c)
					l.advance()
					continue
				}
				break
			}
			l.emit(tokLangTag, b.String(), line, col)
		case r == '^':
			if l.at(1) == '^' {
				l.advance()
				l.advance()
				l.emit(tokDTSep, "^^", line, col)
			} else {
				l.advance()
				l.emit(tokPunct, "^", line, col)
			}
		case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.at(1))):
			l.emit(tokNumber, l.lexNumber(), line, col)
		case r == '+' || r == '-':
			// Sign glued to a digit is a signed number.
			if unicode.IsDigit(l.at(1)) {
				sign := string(l.advance())
				l.emit(tokNumber, sign+l.lexNumber(), line, col)
			} else {
				l.advance()
				l.emit(tokPunct, string(r), line, col)
			}
		case r == '!':
			l.advance()
			if l.cur() == '=' {
				l.advance()
				l.emit(tokPunct, "!=", line, col)
			} else {
				l.emit(tokPunct, "!", line, col)
			}
		case r == '>':
			l.advance()
			if l.cur() == '=' {
				l.advance()
				l.emit(tokPunct, ">=", line, col)
			} else {
				l.emit(tokPunct, ">", line, col)
			}
		case r == '&':
			if l.at(1) != '&' {
				return l.errf("unexpected '&'")
			}
			l.advance()
			l.advance()
			l.emit(tokPunct, "&&", line, col)
		case r == '|':
			if l.at(1) == '|' {
				l.advance()
				l.advance()
				l.emit(tokPunct, "||", line, col)
			} else {
				l.advance()
				l.emit(tokPunct, "|", line, col)
			}
		case r == '=':
			l.advance()
			l.emit(tokPunct, "=", line, col)
		case strings.ContainsRune("{}().,;*/", r):
			l.advance()
			l.emit(tokPunct, string(r), line, col)
		case r == '_' && l.at(1) == ':':
			l.advance()
			l.advance()
			name := l.lexName()
			l.emit(tokPName, "_:"+name, line, col)
		case unicode.IsLetter(r) || r == '_':
			word := l.lexPNameOrKeyword()
			upper := strings.ToUpper(word)
			switch {
			case word == "a":
				l.emit(tokA, "a", line, col)
			case strings.Contains(word, ":"):
				l.emit(tokPName, word, line, col)
			case sparqlKeywords[upper] || aggregateNames[upper] || builtinNames[upper]:
				l.emit(tokKeyword, upper, line, col)
			default:
				return l.errf("unexpected identifier %q (missing ':'?)", word)
			}
		default:
			return l.errf("unexpected character %q", r)
		}
	}
	l.emit(tokEOF, "", l.line, l.col)
	return nil
}

// looksLikeIRI scans ahead from '<' for '>' with no whitespace in between.
func (l *lexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.src); i++ {
		r := l.src[i]
		if r == '>' {
			return true
		}
		if unicode.IsSpace(r) || r == '<' {
			return false
		}
	}
	return false
}

func (l *lexer) lexIRI() (string, error) {
	l.advance() // '<'
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.advance()
		if r == '>' {
			return b.String(), nil
		}
		b.WriteRune(r)
	}
	return "", l.errf("unterminated IRI")
}

func (l *lexer) lexString() (string, error) {
	quote := l.advance()
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.advance()
		if r == quote {
			return b.String(), nil
		}
		if r == '\\' {
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case 'r':
				b.WriteRune('\r')
			case '"', '\'', '\\':
				b.WriteRune(e)
			default:
				return "", l.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteRune(r)
	}
	return "", l.errf("unterminated string literal")
}

func (l *lexer) lexNumber() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.cur()
		if unicode.IsDigit(r) || r == '.' || r == 'e' || r == 'E' {
			// A '.' not followed by a digit/e terminates the number.
			if r == '.' {
				nxt := l.at(1)
				if !unicode.IsDigit(nxt) {
					break
				}
			}
			if r == 'e' || r == 'E' {
				nxt := l.at(1)
				if !unicode.IsDigit(nxt) && nxt != '+' && nxt != '-' {
					break
				}
				b.WriteRune(l.advance()) // e
				if c := l.cur(); c == '+' || c == '-' {
					b.WriteRune(l.advance())
				}
				continue
			}
			b.WriteRune(l.advance())
			continue
		}
		break
	}
	return b.String()
}

func (l *lexer) lexName() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.cur()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(l.advance())
			continue
		}
		break
	}
	return b.String()
}

// lexPNameOrKeyword reads a word that may contain one ':' (prefixed name)
// and name characters including '-' and '.' (dot only when followed by a
// name character).
func (l *lexer) lexPNameOrKeyword() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.cur()
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == ':':
			b.WriteRune(l.advance())
		case r == '.':
			nxt := l.at(1)
			if unicode.IsLetter(nxt) || unicode.IsDigit(nxt) || nxt == '_' {
				b.WriteRune(l.advance())
			} else {
				return b.String()
			}
		default:
			return b.String()
		}
	}
	return b.String()
}
