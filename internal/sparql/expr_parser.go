package sparql

import (
	"strings"

	"rdfanalytics/internal/rdf"
)

// Expression grammar (precedence climbing):
//
//	expr        := orExpr
//	orExpr      := andExpr ( "||" andExpr )*
//	andExpr     := relExpr ( "&&" relExpr )*
//	relExpr     := addExpr ( ("="|"!="|"<"|"<="|">"|">=") addExpr | [NOT] IN "(" list ")" )?
//	addExpr     := mulExpr ( ("+"|"-") mulExpr )*
//	mulExpr     := unaryExpr ( ("*"|"/") unaryExpr )*
//	unaryExpr   := ("!"|"-"|"+")? primary
//	primary     := "(" expr ")" | builtinCall | aggregate | EXISTS | var | literal | IRI
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseRelational() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.peekPunct(op) {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return ExprBinary{Op: op, Left: left, Right: right}, nil
		}
	}
	// [NOT] IN (...)
	not := false
	if p.peekKeyword("NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.advance()
		not = true
	}
	if p.acceptKeyword("IN") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []Expr
		for !p.acceptPunct(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			p.acceptPunct(",")
		}
		return ExprIn{Not: not, Left: left, List: list}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "+", Left: left, Right: right}
		case p.acceptPunct("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "*", Left: left, Right: right}
		case p.acceptPunct("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "/", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.acceptPunct("!"):
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: "!", Sub: sub}, nil
	case p.acceptPunct("-"):
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: "-", Sub: sub}, nil
	case p.acceptPunct("+"):
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	case tokVar:
		p.advance()
		return ExprVar{Name: t.text}, nil
	case tokNumber:
		p.advance()
		return ExprTerm{Term: numberTerm(t.text)}, nil
	case tokLiteral:
		term, err := p.parseLiteralTerm()
		if err != nil {
			return nil, err
		}
		return ExprTerm{Term: term}, nil
	case tokIRI:
		// Either a constant IRI or a cast call: <datatype>(expr).
		p.advance()
		iri := t.text
		if p.peekPunct("(") {
			p.advance()
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return ExprCall{Func: iri, Args: []Expr{arg}}, nil
		}
		return ExprTerm{Term: rdf.NewIRI(iri)}, nil
	case tokPName:
		term, err := p.parseIRITerm()
		if err != nil {
			return nil, err
		}
		if p.peekPunct("(") {
			// Cast via prefixed datatype, e.g. xsd:integer("2").
			p.advance()
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return ExprCall{Func: term.Value, Args: []Expr{arg}}, nil
		}
		return ExprTerm{Term: term}, nil
	case tokKeyword:
		switch {
		case t.text == "TRUE":
			p.advance()
			return ExprTerm{Term: rdf.NewBool(true)}, nil
		case t.text == "FALSE":
			p.advance()
			return ExprTerm{Term: rdf.NewBool(false)}, nil
		case t.text == "EXISTS" || t.text == "NOT":
			return p.parseExistsExpr()
		case aggregateNames[t.text]:
			return p.parseAggregate()
		case builtinNames[t.text]:
			return p.parseBuiltinCall()
		}
	}
	return nil, p.errf("expected expression, got %s", t)
}

func (p *parser) parseExistsExpr() (Expr, error) {
	not := false
	if p.acceptKeyword("NOT") {
		not = true
	}
	if err := p.expectKeyword("EXISTS"); err != nil {
		return nil, err
	}
	gp, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	return ExprExists{Not: not, Pattern: gp}, nil
}

func (p *parser) parseAggregate() (Expr, error) {
	name := p.advance().text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := ExprAggregate{Func: name, Separator: " "}
	if p.acceptKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.acceptPunct("*") {
		agg.Star = true
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if p.acceptPunct(";") {
		if err := p.expectKeyword("SEPARATOR"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		sep := p.cur()
		if sep.kind != tokLiteral {
			return nil, p.errf("expected string after SEPARATOR=")
		}
		p.advance()
		agg.Separator = sep.text
	}
	return agg, p.expectPunct(")")
}

func (p *parser) parseBuiltinCall() (Expr, error) {
	name := strings.ToUpper(p.advance().text)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	call := ExprCall{Func: name}
	if !p.peekPunct(")") {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	return call, p.expectPunct(")")
}
