package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rdfanalytics/internal/rdf"
)

// SyntaxError reports a parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
	base     string
	genSeq   int
}

// Parse parses a SPARQL query string into a Query.
func Parse(src string) (*Query, error) {
	start := time.Now()
	defer func() {
		observeSince(phaseParse, start)
		queriesParsed.Inc()
	}()
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	for k, v := range rdf.WellKnownPrefixes {
		p.prefixes[k] = v
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after end of query", p.cur())
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and constants.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.cur(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.cur(); t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	return nil
}

func (p *parser) peekPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) freshVar() string {
	p.genSeq++
	return fmt.Sprintf("_anon%d", p.genSeq)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	// Prologue.
	for {
		if p.acceptKeyword("PREFIX") {
			t := p.cur()
			if t.kind != tokPName || !strings.HasSuffix(t.text, ":") {
				return nil, p.errf("expected prefix label ending in ':', got %s", t)
			}
			label := strings.TrimSuffix(t.text, ":")
			p.advance()
			iri := p.cur()
			if iri.kind != tokIRI {
				return nil, p.errf("expected IRI after PREFIX %s:", label)
			}
			p.advance()
			p.prefixes[label] = iri.text
			continue
		}
		if p.acceptKeyword("BASE") {
			iri := p.cur()
			if iri.kind != tokIRI {
				return nil, p.errf("expected IRI after BASE")
			}
			p.advance()
			p.base = iri.text
			continue
		}
		break
	}
	q.Prefixes = p.prefixes
	switch {
	case p.acceptKeyword("SELECT"):
		q.Form = FormSelect
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Form = FormAsk
	case p.acceptKeyword("CONSTRUCT"):
		q.Form = FormConstruct
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		for !p.peekPunct("}") {
			tps, err := p.parseTriplesSameSubject()
			if err != nil {
				return nil, err
			}
			q.Template = append(q.Template, tps...)
			if !p.acceptPunct(".") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
	case p.acceptKeyword("DESCRIBE"):
		q.Form = FormDescribe
		for {
			t := p.cur()
			if t.kind == tokVar {
				p.advance()
				q.Describe = append(q.Describe, Var(t.text))
				continue
			}
			if t.kind == tokIRI || t.kind == tokPName {
				term, err := p.parseIRITerm()
				if err != nil {
					return nil, err
				}
				q.Describe = append(q.Describe, TermNode(term))
				continue
			}
			break
		}
		if len(q.Describe) == 0 {
			return nil, p.errf("DESCRIBE needs at least one variable or IRI")
		}
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %s", p.cur())
	}
	// WHERE clause (the keyword is optional before '{'; DESCRIBE may omit
	// the whole clause).
	p.acceptKeyword("WHERE")
	if q.Form == FormDescribe && !p.peekPunct("{") {
		q.Where = &GroupPattern{}
		return q, nil
	}
	where, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = where
	// Solution modifiers.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			gc, ok, err := p.parseGroupCond()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.GroupBy = append(q.GroupBy, gc)
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("empty GROUP BY")
		}
	}
	if p.acceptKeyword("HAVING") {
		for {
			if !p.peekPunct("(") {
				break
			}
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return nil, p.errf("HAVING requires a parenthesized condition")
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			oc, ok, err := p.parseOrderCond()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, oc)
		}
		if len(q.OrderBy) == 0 {
			return nil, p.errf("empty ORDER BY")
		}
	}
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			return q, nil
		}
	}
}

func (p *parser) parseInt() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %s", t)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectClause(q *Query) error {
	if p.acceptKeyword("DISTINCT") {
		q.Select.Distinct = true
	} else {
		p.acceptKeyword("REDUCED")
	}
	if p.acceptPunct("*") {
		q.Select.Star = true
		return nil
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokVar:
			p.advance()
			q.Select.Items = append(q.Select.Items, SelectItem{Var: t.text})
		case t.kind == tokPunct && t.text == "(":
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			name := ""
			if p.acceptKeyword("AS") {
				v := p.cur()
				if v.kind != tokVar {
					return p.errf("expected variable after AS")
				}
				p.advance()
				name = v.text
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			if name == "" {
				name = p.freshVar()
			}
			q.Select.Items = append(q.Select.Items, SelectItem{Var: name, Expr: e})
		case t.kind == tokKeyword && (aggregateNames[t.text] || builtinNames[t.text]):
			// Bare aggregate/builtin without parentheses around the whole
			// item, e.g. "SELECT ?x SUM(?y)" as the paper writes it.
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			name := ""
			if p.acceptKeyword("AS") {
				v := p.cur()
				if v.kind != tokVar {
					return p.errf("expected variable after AS")
				}
				p.advance()
				name = v.text
			}
			if name == "" {
				name = p.autoName(e)
			}
			q.Select.Items = append(q.Select.Items, SelectItem{Var: name, Expr: e})
		default:
			if len(q.Select.Items) == 0 {
				return p.errf("expected projection, got %s", t)
			}
			return nil
		}
	}
}

// autoName generates a readable output column for a bare expression, e.g.
// SUM(?x3) -> "sum_x3".
func (p *parser) autoName(e Expr) string {
	if agg, ok := e.(ExprAggregate); ok {
		base := strings.ToLower(agg.Func)
		if v, ok := agg.Arg.(ExprVar); ok {
			return base + "_" + v.Name
		}
		if agg.Star {
			return base
		}
		return base + strconv.Itoa(p.pos)
	}
	if call, ok := e.(ExprCall); ok {
		base := strings.ToLower(call.Func)
		if i := strings.LastIndexAny(base, "#/"); i >= 0 {
			base = base[i+1:]
		}
		if len(call.Args) == 1 {
			if v, ok := call.Args[0].(ExprVar); ok {
				return base + "_" + v.Name
			}
		}
		return base + strconv.Itoa(p.pos)
	}
	return p.freshVar()
}

func (p *parser) parseGroupCond() (GroupCond, bool, error) {
	t := p.cur()
	switch {
	case t.kind == tokVar:
		p.advance()
		return GroupCond{Var: t.text}, true, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return GroupCond{}, false, err
		}
		name := ""
		if p.acceptKeyword("AS") {
			v := p.cur()
			if v.kind != tokVar {
				return GroupCond{}, false, p.errf("expected variable after AS")
			}
			p.advance()
			name = v.text
		}
		if err := p.expectPunct(")"); err != nil {
			return GroupCond{}, false, err
		}
		return GroupCond{Var: name, Expr: e}, true, nil
	case t.kind == tokKeyword && builtinNames[t.text]:
		// GROUP BY month(?x) — builtin call condition.
		e, err := p.parseExpr()
		if err != nil {
			return GroupCond{}, false, err
		}
		return GroupCond{Expr: e}, true, nil
	default:
		return GroupCond{}, false, nil
	}
}

func (p *parser) parseOrderCond() (OrderCond, bool, error) {
	switch {
	case p.acceptKeyword("ASC"):
		e, err := p.parseBracketted()
		return OrderCond{Expr: e}, true, err
	case p.acceptKeyword("DESC"):
		e, err := p.parseBracketted()
		return OrderCond{Desc: true, Expr: e}, true, err
	case p.cur().kind == tokVar:
		v := p.advance()
		return OrderCond{Expr: ExprVar{Name: v.text}}, true, nil
	case p.peekPunct("("):
		e, err := p.parseBracketted()
		return OrderCond{Expr: e}, true, err
	case p.cur().kind == tokKeyword && (builtinNames[p.cur().text] || aggregateNames[p.cur().text]):
		e, err := p.parseExpr()
		return OrderCond{Expr: e}, true, err
	default:
		return OrderCond{}, false, nil
	}
}

func (p *parser) parseBracketted() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return e, p.expectPunct(")")
}

// parseGroupPattern parses { elem* }.
func (p *parser) parseGroupPattern() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	gp := &GroupPattern{}
	for {
		if p.acceptPunct("}") {
			return gp, nil
		}
		// The grammar allows a free '.' after non-triple elements.
		if p.acceptPunct(".") {
			continue
		}
		t := p.cur()
		switch {
		case t.kind == tokKeyword && t.text == "FILTER":
			p.advance()
			var e Expr
			var err error
			// FILTER EXISTS / NOT EXISTS may omit parentheses.
			if p.peekKeyword("EXISTS") || p.peekKeyword("NOT") {
				e, err = p.parseExistsExpr()
			} else if p.peekPunct("(") {
				e, err = p.parseBracketted()
			} else if p.cur().kind == tokKeyword && builtinNames[p.cur().text] {
				e, err = p.parseExpr()
			} else {
				return nil, p.errf("expected condition after FILTER")
			}
			if err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, PatternElem{Filter: e})
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.advance()
			sub, err := p.parseGroupPattern()
			if err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, PatternElem{Optional: sub})
		case t.kind == tokKeyword && t.text == "MINUS":
			p.advance()
			sub, err := p.parseGroupPattern()
			if err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, PatternElem{Minus: sub})
		case t.kind == tokKeyword && t.text == "BIND":
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			v := p.cur()
			if v.kind != tokVar {
				return nil, p.errf("expected variable after AS")
			}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, PatternElem{Bind: &BindElem{Expr: e, Var: v.text}})
		case t.kind == tokKeyword && t.text == "VALUES":
			p.advance()
			ve, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, PatternElem{Values: ve})
		case t.kind == tokPunct && t.text == "{":
			// Nested group, subquery, or UNION chain.
			elem, err := p.parseGroupOrSubqueryOrUnion()
			if err != nil {
				return nil, err
			}
			gp.Elems = append(gp.Elems, elem)
		default:
			tps, err := p.parseTriplesSameSubject()
			if err != nil {
				return nil, err
			}
			for i := range tps {
				tp := tps[i]
				gp.Elems = append(gp.Elems, PatternElem{Triple: &tp})
			}
			p.acceptPunct(".")
		}
	}
}

func (p *parser) parseGroupOrSubqueryOrUnion() (PatternElem, error) {
	// Peek inside the '{': a SELECT keyword means subquery.
	if p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "SELECT" {
		p.advance() // '{'
		sub, err := p.parseSubSelect()
		if err != nil {
			return PatternElem{}, err
		}
		if err := p.expectPunct("}"); err != nil {
			return PatternElem{}, err
		}
		return PatternElem{SubQuery: sub}, nil
	}
	first, err := p.parseGroupPattern()
	if err != nil {
		return PatternElem{}, err
	}
	if !p.peekKeyword("UNION") {
		return PatternElem{Group: first}, nil
	}
	union := &UnionPattern{Alternatives: []*GroupPattern{first}}
	for p.acceptKeyword("UNION") {
		alt, err := p.parseGroupPattern()
		if err != nil {
			return PatternElem{}, err
		}
		union.Alternatives = append(union.Alternatives, alt)
	}
	return PatternElem{Union: union}, nil
}

// parseSubSelect parses a SELECT query used as a subquery (no prologue).
func (p *parser) parseSubSelect() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Form: FormSelect, Limit: -1, Prefixes: p.prefixes}
	if err := p.parseSelectClause(q); err != nil {
		return nil, err
	}
	p.acceptKeyword("WHERE")
	where, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = where
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			gc, ok, err := p.parseGroupCond()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.GroupBy = append(q.GroupBy, gc)
		}
	}
	if p.acceptKeyword("HAVING") {
		for p.peekPunct("(") {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.Having = append(q.Having, e)
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			oc, ok, err := p.parseOrderCond()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, oc)
		}
	}
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			return q, nil
		}
	}
}

func (p *parser) parseValues() (*ValuesElem, error) {
	ve := &ValuesElem{}
	multi := false
	if p.acceptPunct("(") {
		multi = true
		for p.cur().kind == tokVar {
			ve.Vars = append(ve.Vars, p.advance().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else {
		v := p.cur()
		if v.kind != tokVar {
			return nil, p.errf("expected variable after VALUES")
		}
		p.advance()
		ve.Vars = []string{v.text}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.acceptPunct("}") {
		if multi {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			row := make([]rdf.Term, 0, len(ve.Vars))
			for !p.acceptPunct(")") {
				if p.acceptKeyword("UNDEF") {
					row = append(row, rdf.Term{})
					continue
				}
				t, err := p.parseTermToken()
				if err != nil {
					return nil, err
				}
				row = append(row, t)
			}
			if len(row) != len(ve.Vars) {
				return nil, p.errf("VALUES row has %d terms, want %d", len(row), len(ve.Vars))
			}
			ve.Rows = append(ve.Rows, row)
		} else {
			if p.acceptKeyword("UNDEF") {
				ve.Rows = append(ve.Rows, []rdf.Term{{}})
				continue
			}
			t, err := p.parseTermToken()
			if err != nil {
				return nil, err
			}
			ve.Rows = append(ve.Rows, []rdf.Term{t})
		}
	}
	return ve, nil
}

// parseTermToken parses a concrete RDF term (no variables), as allowed in
// VALUES data blocks.
func (p *parser) parseTermToken() (rdf.Term, error) {
	n, err := p.parseNode()
	if err != nil {
		return rdf.Term{}, err
	}
	if n.IsVar() {
		return rdf.Term{}, p.errf("variable not allowed here")
	}
	return n.Term, nil
}

// parseTriplesSameSubject parses "subject predicateObjectList" and returns
// the expanded triple patterns.
func (p *parser) parseTriplesSameSubject() ([]TriplePattern, error) {
	subj, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		pred, path, err := p.parseVerb()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: pred, Path: path, O: obj})
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			return out, nil
		}
		// allow trailing ';'
		if p.peekPunct(".") || p.peekPunct("}") {
			return out, nil
		}
	}
}

// parseVerb parses a predicate: 'a', a variable, an IRI/pname, or a property
// path. Returns either a Node (simple predicate) or a Path.
func (p *parser) parseVerb() (Node, Path, error) {
	t := p.cur()
	if t.kind == tokA {
		p.advance()
		return TermNode(rdf.NewIRI(rdf.RDFType)), nil, nil
	}
	if t.kind == tokVar {
		p.advance()
		return Var(t.text), nil, nil
	}
	path, err := p.parsePathAlt()
	if err != nil {
		return Node{}, nil, err
	}
	// Collapse trivial paths to plain predicates.
	if atom, ok := path.(PathIRI); ok {
		return TermNode(atom.IRI), nil, nil
	}
	return Node{}, path, nil
}

func (p *parser) parsePathAlt() (Path, error) {
	left, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("|") {
		right, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		left = PathAlt{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePathSeq() (Path, error) {
	left, err := p.parsePathElt()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("/") {
		right, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		left = PathSeq{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePathElt() (Path, error) {
	inverse := p.acceptPunct("^")
	var base Path
	switch {
	case p.peekPunct("("):
		p.advance()
		inner, err := p.parsePathAlt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		base = inner
	default:
		iri, err := p.parseIRITerm()
		if err != nil {
			return nil, err
		}
		base = PathIRI{IRI: iri}
	}
	if inverse {
		base = PathInverse{Sub: base}
	}
	switch {
	case p.acceptPunct("*"):
		return PathMod{Sub: base, Min: 0, Max: -1}, nil
	case p.acceptPunct("+"):
		return PathMod{Sub: base, Min: 1, Max: -1}, nil
	case p.acceptPunct("?"):
		return PathMod{Sub: base, Min: 0, Max: 1}, nil
	}
	return base, nil
}

func (p *parser) parseIRITerm() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIRI:
		p.advance()
		iri := t.text
		if p.base != "" && !strings.Contains(iri, ":") {
			iri = p.base + iri
		}
		return rdf.NewIRI(iri), nil
	case tokPName:
		p.advance()
		return p.expandPName(t)
	case tokA:
		p.advance()
		return rdf.NewIRI(rdf.RDFType), nil
	default:
		return rdf.Term{}, p.errf("expected IRI, got %s", t)
	}
}

func (p *parser) expandPName(t token) (rdf.Term, error) {
	if strings.HasPrefix(t.text, "_:") {
		return rdf.NewBlank(t.text[2:]), nil
	}
	i := strings.IndexByte(t.text, ':')
	if i < 0 {
		return rdf.Term{}, &SyntaxError{Line: t.line, Col: t.col, Msg: "expected prefixed name"}
	}
	ns, ok := p.prefixes[t.text[:i]]
	if !ok {
		return rdf.Term{}, &SyntaxError{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("undefined prefix %q", t.text[:i])}
	}
	return rdf.NewIRI(ns + t.text[i+1:]), nil
}

// parseNode parses a subject/object: variable, IRI, pname, blank, or literal.
func (p *parser) parseNode() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return Var(t.text), nil
	case tokIRI, tokPName, tokA:
		term, err := p.parseIRITerm()
		if err != nil {
			// maybe blank node pname
			if strings.HasPrefix(t.text, "_:") {
				p.advance()
				return TermNode(rdf.NewBlank(t.text[2:])), nil
			}
			return Node{}, err
		}
		return TermNode(term), nil
	case tokLiteral:
		term, err := p.parseLiteralTerm()
		if err != nil {
			return Node{}, err
		}
		return TermNode(term), nil
	case tokNumber:
		p.advance()
		return TermNode(numberTerm(t.text)), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return TermNode(rdf.NewBool(true)), nil
		case "FALSE":
			p.advance()
			return TermNode(rdf.NewBool(false)), nil
		}
	}
	return Node{}, p.errf("expected term or variable, got %s", t)
}

func (p *parser) parseLiteralTerm() (rdf.Term, error) {
	t := p.advance() // tokLiteral
	switch p.cur().kind {
	case tokLangTag:
		lang := p.advance()
		return rdf.NewLangString(t.text, lang.text), nil
	case tokDTSep:
		p.advance()
		dt, err := p.parseIRITerm()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTyped(t.text, dt.Value), nil
	default:
		return rdf.NewString(t.text), nil
	}
}

func numberTerm(lex string) rdf.Term {
	if strings.ContainsAny(lex, "eE") {
		return rdf.NewTyped(lex, rdf.XSDDouble)
	}
	if strings.Contains(lex, ".") {
		return rdf.NewTyped(lex, rdf.XSDDecimal)
	}
	return rdf.NewTyped(lex, rdf.XSDInteger)
}
