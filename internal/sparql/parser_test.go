package sparql

import (
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?x ?y WHERE { ?x ex:p ?y . }`)
	if q.Form != FormSelect {
		t.Fatal("form")
	}
	if len(q.Select.Items) != 2 || q.Select.Items[0].Var != "x" {
		t.Fatalf("projection: %+v", q.Select.Items)
	}
	if len(q.Where.Elems) != 1 || q.Where.Elems[0].Triple == nil {
		t.Fatalf("where: %+v", q.Where.Elems)
	}
	tp := q.Where.Elems[0].Triple
	if !tp.S.IsVar() || tp.S.Var != "x" {
		t.Errorf("subject: %+v", tp.S)
	}
	if tp.P.Term != rdf.NewIRI("http://ex.org/p") {
		t.Errorf("predicate: %+v", tp.P)
	}
}

func TestParseSelectStarDistinct(t *testing.T) {
	q := MustParse(`SELECT DISTINCT * WHERE { ?s ?p ?o }`)
	if !q.Select.Star || !q.Select.Distinct {
		t.Fatalf("star/distinct: %+v", q.Select)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:Laptop ; ex:price ?p ; ex:tag ex:a , ex:b . }`)
	if n := len(q.Where.Elems); n != 4 {
		t.Fatalf("expanded to %d patterns, want 4", n)
	}
	if q.Where.Elems[0].Triple.P.Term.Value != rdf.RDFType {
		t.Error("'a' keyword not expanded to rdf:type")
	}
}

func TestParseAggregatesWithAndWithoutAS(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?x2 SUM(?x3) (AVG(?x3) AS ?avg) WHERE { ?x1 ex:q ?x3 . ?x1 ex:g ?x2 } GROUP BY ?x2`)
	if len(q.Select.Items) != 3 {
		t.Fatalf("items: %+v", q.Select.Items)
	}
	if q.Select.Items[1].Var != "sum_x3" {
		t.Errorf("auto name = %q, want sum_x3", q.Select.Items[1].Var)
	}
	if q.Select.Items[2].Var != "avg" {
		t.Errorf("AS name = %q", q.Select.Items[2].Var)
	}
	agg, ok := q.Select.Items[1].Expr.(ExprAggregate)
	if !ok || agg.Func != "SUM" {
		t.Errorf("aggregate: %+v", q.Select.Items[1].Expr)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Var != "x2" {
		t.Errorf("group by: %+v", q.GroupBy)
	}
}

func TestParseGroupByDerivedExpression(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT (MONTH(?x2) AS ?m) SUM(?x3) WHERE { ?x1 ex:hasDate ?x2 . ?x1 ex:q ?x3 }
GROUP BY MONTH(?x2)`)
	if len(q.GroupBy) != 1 || q.GroupBy[0].Expr == nil {
		t.Fatalf("group by: %+v", q.GroupBy)
	}
	call, ok := q.GroupBy[0].Expr.(ExprCall)
	if !ok || call.Func != "MONTH" {
		t.Errorf("group cond: %+v", q.GroupBy[0].Expr)
	}
}

func TestParseHavingFilterOrderLimit(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?b (SUM(?q) AS ?total) WHERE {
  ?i ex:takesPlaceAt ?b .
  ?i ex:inQuantity ?q .
  FILTER(?q >= 2)
} GROUP BY ?b
HAVING (SUM(?q) > 1000)
ORDER BY DESC(?total)
LIMIT 10 OFFSET 5`)
	if len(q.Having) != 1 {
		t.Fatalf("having: %+v", q.Having)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("order by: %+v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit/offset: %d/%d", q.Limit, q.Offset)
	}
}

func TestParseFilterExpressions(t *testing.T) {
	cases := []string{
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(?v >= 2) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(?v > 1 && ?v < 10) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(!BOUND(?v) || ?v = 3) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(REGEX(?v, "^a", "i")) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(?v IN (1, 2, 3)) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(?v NOT IN (1)) }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER EXISTS { ?x <http://e/q> ?w } }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER NOT EXISTS { ?x <http://e/q> ?w } }`,
		`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(xsd:integer(?v) = 2) }`,
		`SELECT ?x WHERE { ?x <http://e/rd> ?rd . FILTER ( ?rd >= "2021-01-01T00:00:00"^^xsd:dateTime && ?rd <= "2021-12-31T00:00:00"^^xsd:dateTime) }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestParseOptionalUnionMinusBindValues(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT * WHERE {
  ?s ex:p ?o .
  OPTIONAL { ?s ex:q ?w }
  { ?s ex:r ex:a } UNION { ?s ex:r ex:b }
  MINUS { ?s ex:bad true }
  BIND(?o + 1 AS ?o1)
  VALUES ?z { ex:v1 ex:v2 }
}`)
	var haveOpt, haveUnion, haveMinus, haveBind, haveValues bool
	for _, e := range q.Where.Elems {
		switch {
		case e.Optional != nil:
			haveOpt = true
		case e.Union != nil:
			haveUnion = true
			if len(e.Union.Alternatives) != 2 {
				t.Errorf("union alternatives: %d", len(e.Union.Alternatives))
			}
		case e.Minus != nil:
			haveMinus = true
		case e.Bind != nil:
			haveBind = true
		case e.Values != nil:
			haveValues = true
		}
	}
	if !haveOpt || !haveUnion || !haveMinus || !haveBind || !haveValues {
		t.Fatalf("missing clauses: opt=%v union=%v minus=%v bind=%v values=%v",
			haveOpt, haveUnion, haveMinus, haveBind, haveValues)
	}
}

func TestParseSubquery(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?b ?avg WHERE {
  { SELECT ?b (AVG(?p) AS ?avg) WHERE { ?x ex:at ?b . ?x ex:price ?p } GROUP BY ?b }
  FILTER(?avg > 100)
}`)
	found := false
	for _, e := range q.Where.Elems {
		if e.SubQuery != nil {
			found = true
			if len(e.SubQuery.GroupBy) != 1 {
				t.Error("subquery group by lost")
			}
		}
	}
	if !found {
		t.Fatal("subquery not parsed")
	}
}

func TestParsePropertyPaths(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?x WHERE { ?x ex:manufacturer/ex:origin ex:USA . }`)
	tp := q.Where.Elems[0].Triple
	if tp.Path == nil {
		t.Fatal("path not recognized")
	}
	seq, ok := tp.Path.(PathSeq)
	if !ok {
		t.Fatalf("path type %T", tp.Path)
	}
	if seq.Left.(PathIRI).IRI.Value != "http://e/manufacturer" {
		t.Errorf("left: %v", seq.Left)
	}
	// Inverse, alternative and closure modifiers.
	for _, src := range []string{
		`SELECT ?x WHERE { ?x ^<http://e/p> ?y }`,
		`SELECT ?x WHERE { ?x <http://e/p>|<http://e/q> ?y }`,
		`SELECT ?x WHERE { ?x <http://e/p>+ ?y }`,
		`SELECT ?x WHERE { ?x <http://e/p>* ?y }`,
		`SELECT ?x WHERE { ?x (<http://e/p>/<http://e/q>)? ?y }`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestParseConstructAndAsk(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://e/>
CONSTRUCT { ?s ex:flat ?v } WHERE { ?s ex:a/ex:b ?v }`)
	if q.Form != FormConstruct || len(q.Template) != 1 {
		t.Fatalf("construct: %+v", q)
	}
	q2 := MustParse(`ASK { <http://e/s> <http://e/p> 1 }`)
	if q2.Form != FormAsk {
		t.Fatal("ask form")
	}
}

func TestParsePaperFig13Query(t *testing.T) {
	// The running-example query of Fig 1.3, verbatim modulo whitespace.
	src := `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX ex: <http://www.ics.forth.gr/example#>
SELECT ?m (AVG(?p) as ?avgprice)
WHERE {
  ?s rdf:type ex:Laptop.
  ?s ex:manufacturer ?m.
  ?m ex:origin ex:USA.
  ?s ex:price ?p.
  ?s ex:USBPorts ?u.
  ?s ex:hardDrive ?hd.
  ?hd rdf:type ex:SSD.
  ?hd ex:manufacturer ?hdm.
  ?hdm ex:origin ?hdmc.
  ?hdmc ex:locatedAt ex:Asia.
  FILTER (?u >= 2).
  ?s ex:releaseDate ?rd .
  FILTER ( ?rd >= "2021-01-01T00:00:00"^^xsd:dateTime &&
           ?rd <= "2021-12-31T00:00:00"^^xsd:dateTime)
} GROUP BY ?m`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("paper query failed to parse: %v", err)
	}
	nTriples := 0
	nFilters := 0
	for _, e := range q.Where.Elems {
		if e.Triple != nil {
			nTriples++
		}
		if e.Filter != nil {
			nFilters++
		}
	}
	if nTriples != 11 || nFilters != 2 {
		t.Errorf("triples=%d filters=%d, want 11/2", nTriples, nFilters)
	}
}

func TestParseErrorsPositions(t *testing.T) {
	bad := []string{
		`SELECT WHERE { ?s ?p ?o }`,       // missing projection
		`SELECT ?s { ?s ?p }`,             // incomplete triple
		`SELECT ?s WHERE { ?s ?p ?o `,     // unclosed group
		`SELECT ?s WHERE { ?s foo:p ?o }`, // undefined prefix
		`SELECT ?s WHERE { ?s ?p ?o } GROUP BY`,
		`SELECT ?s WHERE { ?s ?p ?o } HAVING ?x`,
		`FOO ?s WHERE { ?s ?p ?o }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 }`); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// String forms must themselves re-parse inside a FILTER.
	exprs := []string{
		`(?a + ?b)`,
		`(?a >= 2)`,
		`((?a > 1) && (?a < 10))`,
		`MONTH(?d)`,
	}
	for _, e := range exprs {
		src := `SELECT ?a WHERE { ?a <http://e/p> ?b . FILTER(` + e + `) }`
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		var f Expr
		for _, el := range q.Where.Elems {
			if el.Filter != nil {
				f = el.Filter
			}
		}
		if f == nil {
			t.Fatalf("no filter in %q", src)
		}
		src2 := `SELECT ?a WHERE { ?a <http://e/p> ?b . FILTER(` + f.String() + `) }`
		if _, err := Parse(src2); err != nil {
			t.Errorf("re-parse of %q failed: %v", f.String(), err)
		}
	}
}

func TestHasAggregate(t *testing.T) {
	q := MustParse(`SELECT (SUM(?x) + 1 AS ?y) WHERE { ?s <http://e/p> ?x }`)
	if !HasAggregate(q.Select.Items[0].Expr) {
		t.Error("aggregate inside arithmetic not detected")
	}
	q2 := MustParse(`SELECT (?x + 1 AS ?y) WHERE { ?s <http://e/p> ?x }`)
	if HasAggregate(q2.Select.Items[0].Expr) {
		t.Error("false positive aggregate detection")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT ?x WHERE { ?x <http://e/p> \"unterminated }",
		"SELECT ?x WHERE { ?x & ?y }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected lexer error for %q", src)
		}
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	if _, err := Parse(`select ?x where { ?x a <http://e/C> } group by ?x`); err != nil {
		t.Fatalf("lowercase keywords: %v", err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := `PREFIX ex: <http://e/>
SELECT ?x2 ?x5 (SUM(?x3) AS ?t) WHERE {
  ?x1 ex:takesPlaceAt ?x2 .
  ?x1 ex:inQuantity ?x3 .
  ?x1 ex:delivers ?x4 .
  ?x4 ex:brand ?x5 .
  FILTER(?x3 >= 2)
} GROUP BY ?x2 ?x5 HAVING (SUM(?x3) > 1000)`
	b.SetBytes(int64(len(src)))
	for b.Loop() {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = strings.TrimSpace
