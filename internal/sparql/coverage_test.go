package sparql

import (
	"fmt"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

func TestValuesMultiColumn(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?expected WHERE {
  VALUES (?i ?expected) { (ex:i1 200) (ex:i2 100) (ex:i3 UNDEF) }
  ?i ex:inQuantity ?q .
  FILTER(!BOUND(?expected) || ?q = ?expected)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows: %s", res)
	}
	// Mismatched row widths error.
	if _, err := Parse(`SELECT ?a WHERE { VALUES (?a ?b) { (1) } }`); err == nil {
		t.Error("short VALUES row accepted")
	}
}

func TestValuesJoinAgainstBound(t *testing.T) {
	g := invoices(t)
	// VALUES after the pattern: acts as a join filter on the bound var.
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { ?i ex:delivers ex:coca . VALUES ?i { ex:i1 ex:i99 } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["i"].LocalName() != "i1" {
		t.Fatalf("rows: %s", res)
	}
}

func TestSubqueryWithModifiers(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b ?t WHERE {
  { SELECT ?b (SUM(?q) AS ?t) WHERE { ?i ex:takesPlaceAt ?b . ?i ex:inQuantity ?q }
    GROUP BY ?b HAVING (SUM(?q) > 300) ORDER BY DESC(?t) LIMIT 1 OFFSET 0 }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows: %s", res)
	}
}

func TestGroupByExprWithAS(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?m (SUM(?q) AS ?t) WHERE { ?i ex:hasDate ?d . ?i ex:inQuantity ?q }
GROUP BY (MONTH(?d) AS ?m)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows: %s", res)
	}
	for _, row := range res.Rows {
		if row["m"].IsZero() {
			t.Error("named group expression unbound")
		}
	}
}

func TestOrderByVariants(t *testing.T) {
	g := invoices(t)
	for _, src := range []string{
		`PREFIX ex: <http://e/> SELECT ?q WHERE { ?i ex:inQuantity ?q } ORDER BY ASC(?q)`,
		`PREFIX ex: <http://e/> SELECT ?q WHERE { ?i ex:inQuantity ?q } ORDER BY (?q + 0)`,
		`PREFIX ex: <http://e/> SELECT ?q WHERE { ?i ex:inQuantity ?q } ORDER BY ABS(?q)`,
	} {
		res, err := Select(g, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v, _ := res.Rows[0]["q"].Int(); v != 100 {
			t.Errorf("%s: first row %v", src, res.Rows[0]["q"])
		}
	}
}

func TestSelectExprWithoutAggregates(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT (?q * 2 AS ?dbl) (STR(?i) AS ?label) WHERE { ?i ex:inQuantity ?q } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row["dbl"].IsZero() || row["label"].IsZero() {
			t.Errorf("projection exprs unbound: %v", row)
		}
	}
}

func TestPathBothEndsUnbound(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i ?b WHERE { ?i ex:delivers/ex:brand ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
	// Inverse-headed path, both unbound.
	res, err = Select(g, `PREFIX ex: <http://e/>
SELECT ?p ?i WHERE { ?p ^ex:delivers ?i }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("inverse rows = %d", res.Len())
	}
	// Alternation-headed path, both unbound.
	res, err = Select(g, `PREFIX ex: <http://e/>
SELECT ?s ?o WHERE { ?s ex:brand|ex:takesPlaceAt ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 { // 3 brand + 7 takesPlaceAt
		t.Fatalf("alt rows = %d", res.Len())
	}
	// Zero-or-more with unbound subject (every node relates to itself).
	res, err = Select(g, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:nonexistent* ex:i1 }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("zero-length path missed the reflexive case")
	}
}

func TestPathBoundBothEnds(t *testing.T) {
	g := invoices(t)
	yes, err := Ask(g, `PREFIX ex: <http://e/> ASK { ex:i1 ex:delivers/ex:brand ex:CocaCola }`)
	if err != nil || !yes {
		t.Fatalf("connect: %v %v", yes, err)
	}
	no, err := Ask(g, `PREFIX ex: <http://e/> ASK { ex:i1 ex:delivers/ex:brand ex:PepsiCo }`)
	if err != nil || no {
		t.Fatalf("connect: %v %v", no, err)
	}
}

func TestLexerStringEscapes(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{
		S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"),
		O: rdf.NewString("line1\nline2\t\"quoted\""),
	})
	res, err := Select(g, `SELECT ?s WHERE { ?s <http://e/p> "line1\nline2\t\"quoted\"" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("escaped literal did not match")
	}
	if _, err := Parse(`SELECT ?s WHERE { ?s ?p "bad\z" }`); err == nil {
		t.Error("unknown escape accepted")
	}
}

func TestLexerNumbers(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"), O: rdf.NewTyped("1.5e2", rdf.XSDDouble)})
	res, err := Select(g, `SELECT ?s WHERE { ?s <http://e/p> ?v . FILTER(?v = 1.5e2) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatal("scientific notation mismatch")
	}
	res, err = Select(g, `SELECT ?s WHERE { ?s <http://e/p> ?v . FILTER(?v > -1e1 && ?v < +2e2) }`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("signed numbers: %v, %v", res, err)
	}
}

func TestBlankNodesInQuery(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
_:b1 ex:p ex:target .
`)
	res, err := Select(g, `SELECT ?o WHERE { _:b1 <http://e/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("blank subject query: %s", res)
	}
}

func TestNestedGroupPattern(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE { { ?i ex:delivers ex:coca . { ?i ex:inQuantity 400 } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // i4, i6
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestCompatibleBindings(t *testing.T) {
	a := Binding{"x": rdf.NewInteger(1), "y": rdf.NewInteger(2)}
	b := Binding{"x": rdf.NewInteger(1), "z": rdf.NewInteger(3)}
	c := Binding{"x": rdf.NewInteger(9)}
	if !a.compatible(b) || !b.compatible(a) {
		t.Error("compatible bindings rejected")
	}
	if a.compatible(c) {
		t.Error("conflicting bindings accepted")
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lex(`SELECT ?x WHERE { <http://e/a> ?p "s" }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.kind != tokEOF && tok.String() == "" {
			t.Errorf("empty token string for %+v", tok)
		}
	}
	if toks[len(toks)-1].String() != "EOF" {
		t.Error("EOF token string")
	}
}

func TestHasAggregateBranches(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{ExprUnary{Op: "!", Sub: ExprAggregate{Func: "SUM"}}, true},
		{ExprIn{Left: ExprVar{Name: "x"}, List: []Expr{ExprAggregate{Func: "MAX"}}}, true},
		{ExprIn{Left: ExprAggregate{Func: "MIN"}}, true},
		{ExprCall{Func: "ABS", Args: []Expr{ExprVar{Name: "x"}}}, false},
		{nil, false},
	}
	for _, c := range cases {
		if HasAggregate(c.e) != c.want {
			t.Errorf("HasAggregate(%v) != %v", c.e, c.want)
		}
	}
}

// TestConcurrentQueries: many goroutines querying one graph concurrently
// (the server's situation) produce correct results; run with -race in CI.
func TestConcurrentQueries(t *testing.T) {
	g := invoices(t)
	const workers = 16
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 30; i++ {
				res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b (SUM(?q) AS ?t) WHERE { ?i ex:takesPlaceAt ?b . ?i ex:inQuantity ?q } GROUP BY ?b`)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != 3 {
					errs <- fmt.Errorf("worker %d: %d rows", w, res.Len())
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestProjectionStarSkipsAnonVars(t *testing.T) {
	g := invoices(t)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT * WHERE { ?i ex:inQuantity ?q . FILTER(?q > 350) }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vars {
		if strings.HasPrefix(v, "_anon") {
			t.Errorf("anonymous variable %q leaked into star projection", v)
		}
	}
}
