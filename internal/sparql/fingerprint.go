package sparql

import (
	"fmt"
	"hash/fnv"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Structural query fingerprinting. A fingerprint is a canonical rendering
// of a query's *shape*: variables are renamed ?v1, ?v2, ... in order of
// first occurrence and constant terms are replaced by the placeholder "$",
// so two queries that differ only in literal values or variable names share
// a fingerprint and aggregate together in the workload profiler. Predicate
// IRIs (and the class IRI of an rdf:type object) are kept — they define
// which part of the graph the query touches, which is the shape a workload
// analysis cares about. LIMIT/OFFSET values count as constants: only their
// presence is recorded.

// Fingerprint returns the structural fingerprint of a parsed query.
func Fingerprint(q *Query) string {
	w := &fpWriter{names: map[string]string{}}
	w.query(q)
	return w.sb.String()
}

// FingerprintQuery parses src and fingerprints it. Unparseable input maps
// to the single fingerprint "unparseable", so broken queries still
// aggregate in the workload view instead of vanishing.
func FingerprintQuery(src string) string {
	q, err := Parse(src)
	if err != nil {
		return "unparseable"
	}
	return Fingerprint(q)
}

// FingerprintID returns a short stable hex identifier for a fingerprint
// string (FNV-64a), compact enough for log lines and metric labels.
func FingerprintID(fp string) string {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return fmt.Sprintf("%016x", h.Sum64())
}

// fpWriter accumulates the canonical rendering; names maps original
// variable names to their canonical ?vN form.
type fpWriter struct {
	sb    strings.Builder
	names map[string]string
}

func (w *fpWriter) canon(v string) string {
	if c, ok := w.names[v]; ok {
		return c
	}
	c := fmt.Sprintf("?v%d", len(w.names)+1)
	w.names[v] = c
	return c
}

func (w *fpWriter) query(q *Query) {
	switch q.Form {
	case FormAsk:
		w.sb.WriteString("ask")
	case FormConstruct:
		w.sb.WriteString("construct")
	case FormDescribe:
		w.sb.WriteString("describe")
	default:
		w.sb.WriteString("select")
		if q.Select.Distinct {
			w.sb.WriteString(" distinct")
		}
		if q.Select.Star {
			w.sb.WriteString(" *")
		}
		for _, it := range q.Select.Items {
			w.sb.WriteByte(' ')
			if it.Expr != nil {
				w.sb.WriteString("(" + w.expr(it.Expr) + " as " + w.canon(it.Var) + ")")
			} else {
				w.sb.WriteString(w.canon(it.Var))
			}
		}
	}
	w.sb.WriteByte(' ')
	w.group(q.Where)
	if len(q.GroupBy) > 0 {
		w.sb.WriteString(" group(")
		for i, gc := range q.GroupBy {
			if i > 0 {
				w.sb.WriteByte(',')
			}
			if gc.Expr != nil {
				w.sb.WriteString(w.expr(gc.Expr))
				if gc.Var != "" {
					w.sb.WriteString(" as " + w.canon(gc.Var))
				}
			} else {
				w.sb.WriteString(w.canon(gc.Var))
			}
		}
		w.sb.WriteByte(')')
	}
	if len(q.Having) > 0 {
		w.sb.WriteString(" having(")
		for i, h := range q.Having {
			if i > 0 {
				w.sb.WriteByte(',')
			}
			w.sb.WriteString(w.expr(h))
		}
		w.sb.WriteByte(')')
	}
	if len(q.OrderBy) > 0 {
		w.sb.WriteString(" order(")
		for i, oc := range q.OrderBy {
			if i > 0 {
				w.sb.WriteByte(',')
			}
			if oc.Desc {
				w.sb.WriteString("desc ")
			}
			w.sb.WriteString(w.expr(oc.Expr))
		}
		w.sb.WriteByte(')')
	}
	if q.Limit >= 0 {
		w.sb.WriteString(" limit")
	}
	if q.Offset > 0 {
		w.sb.WriteString(" offset")
	}
}

func (w *fpWriter) group(gp *GroupPattern) {
	w.sb.WriteByte('{')
	for i, e := range gp.Elems {
		if i > 0 {
			w.sb.WriteByte(' ')
		}
		switch {
		case e.Triple != nil:
			w.triple(e.Triple)
		case e.Filter != nil:
			w.sb.WriteString("filter(" + w.expr(e.Filter) + ")")
		case e.Optional != nil:
			w.sb.WriteString("optional")
			w.group(e.Optional)
		case e.Union != nil:
			w.sb.WriteString("union(")
			for j, alt := range e.Union.Alternatives {
				if j > 0 {
					w.sb.WriteByte('|')
				}
				w.group(alt)
			}
			w.sb.WriteByte(')')
		case e.Group != nil:
			w.group(e.Group)
		case e.Bind != nil:
			w.sb.WriteString("bind(" + w.expr(e.Bind.Expr) + " as " + w.canon(e.Bind.Var) + ")")
		case e.Values != nil:
			// The data rows are constants; only the bound variables are shape.
			w.sb.WriteString("values(")
			for j, v := range e.Values.Vars {
				if j > 0 {
					w.sb.WriteByte(',')
				}
				w.sb.WriteString(w.canon(v))
			}
			w.sb.WriteByte(')')
		case e.SubQuery != nil:
			w.sb.WriteString("sub(")
			w.query(e.SubQuery)
			w.sb.WriteByte(')')
		case e.Minus != nil:
			w.sb.WriteString("minus")
			w.group(e.Minus)
		}
	}
	w.sb.WriteByte('}')
}

func (w *fpWriter) triple(tp *TriplePattern) {
	w.sb.WriteString(w.node(tp.S, false))
	w.sb.WriteByte(' ')
	if tp.Path != nil {
		w.sb.WriteString(tp.Path.String())
	} else {
		w.sb.WriteString(w.node(tp.P, true))
	}
	w.sb.WriteByte(' ')
	keepObject := tp.Path == nil && !tp.P.IsVar() &&
		tp.P.Term.IsIRI() && tp.P.Term.Value == rdf.RDFType
	w.sb.WriteString(w.node(tp.O, keepObject))
	w.sb.WriteString(" .")
}

// node renders one triple-pattern position: canonical variable, the literal
// term when keep is set (predicates, rdf:type classes), "$" otherwise.
func (w *fpWriter) node(n Node, keep bool) string {
	if n.IsVar() {
		return w.canon(n.Var)
	}
	if keep {
		return n.Term.String()
	}
	return "$"
}

func (w *fpWriter) expr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case ExprVar:
		return w.canon(x.Name)
	case ExprTerm:
		return "$"
	case ExprUnary:
		return x.Op + w.expr(x.Sub)
	case ExprBinary:
		return "(" + w.expr(x.Left) + x.Op + w.expr(x.Right) + ")"
	case ExprCall:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = w.expr(a)
		}
		return x.Func + "(" + strings.Join(args, ",") + ")"
	case ExprAggregate:
		inner := "*"
		if !x.Star && x.Arg != nil {
			inner = w.expr(x.Arg)
		}
		if x.Distinct {
			inner = "distinct " + inner
		}
		return x.Func + "(" + inner + ")"
	case ExprExists:
		prefix := "exists"
		if x.Not {
			prefix = "not exists"
		}
		sub := &fpWriter{names: w.names}
		sub.group(x.Pattern)
		return prefix + sub.sb.String()
	case ExprIn:
		items := make([]string, len(x.List))
		for i, it := range x.List {
			items[i] = w.expr(it)
		}
		op := " in("
		if x.Not {
			op = " not in("
		}
		return w.expr(x.Left) + op + strings.Join(items, ",") + ")"
	default:
		return "?"
	}
}
