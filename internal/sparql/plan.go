package sparql

import (
	"fmt"
	"math"
	"strings"
)

// Cost-based BGP planning. A run of triple patterns is compiled to an
// explicit plan: an ordered sequence of scan steps, each carrying the
// cardinality estimate it was costed with, the join strategy the cost model
// selected (index-nested-loop vs hash, priced — not re-decided per scan at
// execution time), whether feedback supplied the estimate, and the filters
// pushed inside the run. Join-order search is exact dynamic programming
// over pattern subsets for runs of up to dpMaxPatterns, and greedy with
// one-step lookahead beyond; both read the costModel in cost.go.
//
// The plan is adaptive: when a scan's actual cardinality exceeds its
// estimate by the configured q-error factor mid-run, the remaining steps
// are re-optimized with the observed row count (see runTriples in join.go).

const (
	// dpMaxPatterns is the largest run planned by exhaustive subset DP
	// (2^10 × 10 transitions ≈ 10k cost evaluations, microseconds); longer
	// runs use greedy ordering with one-step lookahead.
	dpMaxPatterns = 10
	// replanMinRows keeps mid-query re-planning away from tiny
	// intermediates where any order finishes instantly.
	replanMinRows = 64
	// defaultReplanQError is the q-error factor that triggers mid-query
	// re-planning when Options.ReplanQError is zero.
	defaultReplanQError = 8.0
)

// PlannerMode selects the BGP join-order planner.
type PlannerMode int

const (
	// PlannerAuto resolves to PlannerFeedback when a feedback store is
	// configured and PlannerDP otherwise. It is the zero value.
	PlannerAuto PlannerMode = iota
	// PlannerGreedy is the legacy single-pass greedy scan orderer
	// (selectivity sort with a connectivity preference, strategy chosen
	// per scan at execution time). Kept for ablation A/B runs.
	PlannerGreedy
	// PlannerDP is the cost-based planner without feedback reads: DP (or
	// greedy+lookahead) join-order search over stats-cache estimates with
	// join-type selection folded into the cost model.
	PlannerDP
	// PlannerFeedback is PlannerDP plus the q-error feedback loop: scan
	// sites whose fingerprint ran before are costed with their observed
	// actual cardinalities, and estimates that blow up mid-query trigger
	// re-planning of the remaining patterns.
	PlannerFeedback
)

func (m PlannerMode) String() string {
	switch m {
	case PlannerGreedy:
		return "greedy"
	case PlannerDP:
		return "dp"
	case PlannerFeedback:
		return "feedback"
	default:
		return "auto"
	}
}

// ParsePlannerMode parses a -planner CLI value.
func ParsePlannerMode(s string) (PlannerMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PlannerAuto, nil
	case "greedy":
		return PlannerGreedy, nil
	case "dp":
		return PlannerDP, nil
	case "feedback":
		return PlannerFeedback, nil
	}
	return PlannerAuto, fmt.Errorf("sparql: unknown planner %q (want greedy, dp or feedback)", s)
}

// planStep is one scan of a BGP plan.
type planStep struct {
	// pat indexes the pattern in the source run / runPlan.
	pat int
	// strategy is the join strategy the cost model selected. Only honored
	// when planned is true (and never when runtime boundness is mixed,
	// which forces per-row handling for correctness).
	strategy joinStrategy
	planned  bool
	// estOut is the predicted output cardinality after this step — the
	// reference mid-query re-planning compares actual row counts against.
	estOut float64
	// card is the scan's per-pattern cardinality estimate recorded in the
	// profile (feedback actual on a hit, stats-cache count otherwise).
	card int
	// fbSeeded reports whether feedback supplied the estimate.
	fbSeeded bool
	// fbCtx is the step's bound-variable context (costModel.ctxKey) — the
	// feedback site key half recorded into the profile so Observe can store
	// the scan's actual under the context it actually ran in. Empty on
	// unplanned (textual/greedy) steps, which are never recorded.
	fbCtx string
	// filters are pushed-down filters applied right after this step,
	// inside the run's ID space.
	filters []*runFilter
}

// bgpPlan is the compiled plan of one BGP run.
type bgpPlan struct {
	steps []planStep
	cost  float64
	mode  PlannerMode
	// replans counts mid-query re-optimizations of this run.
	replans int
}

// fbSeeded reports whether any step's estimate came from feedback.
func (p *bgpPlan) fbSeeded() bool {
	for _, s := range p.steps {
		if s.fbSeeded {
			return true
		}
	}
	return false
}

// order renders the plan's pattern order as "3→1→2" (1-based source
// positions) for traces and EXPLAIN.
func (p *bgpPlan) order() string {
	var sb strings.Builder
	for i, s := range p.steps {
		if i > 0 {
			sb.WriteString("→")
		}
		fmt.Fprintf(&sb, "%d", s.pat+1)
	}
	return sb.String()
}

// runFilter is a filter expression pushed inside a BGP run, applied in ID
// space as soon as its variables are bound.
type runFilter struct {
	expr Expr
	vars map[string]bool
}

// textualPlan is the no-reorder / legacy plan: patterns in the given order,
// strategies left to execution time.
func textualPlan(rp *runPlan, mode PlannerMode) *bgpPlan {
	plan := &bgpPlan{mode: mode, steps: make([]planStep, len(rp.pats))}
	for i := range rp.pats {
		plan.steps[i] = planStep{pat: i, card: rp.pats[i].baseEst, estOut: math.Inf(1)}
	}
	return plan
}

// planBGP builds the cost-based plan for a run: join-order search over the
// cost model, with estimation-only bound columns (variables flowing in from
// VALUES/BIND/earlier elements) seeding the selectivity math.
func (ev *evaluator) planBGP(rp *runPlan, run []*TriplePattern, boundCols uint64, inRows int) (*bgpPlan, *costModel) {
	var fb map[string]SiteActual
	if ev.planner == PlannerFeedback {
		fb = ev.fbSites
	}
	cm := newCostModel(rp, run, fb)
	pats := make([]int, len(rp.pats))
	for i := range pats {
		pats[i] = i
	}
	order, cost := planOrder(cm, pats, boundCols, float64(inRows))
	plan := &bgpPlan{mode: ev.planner, cost: cost}
	plan.steps = buildSteps(cm, order, boundCols, float64(inRows))
	return plan, cm
}

// planOrder searches for the cheapest execution order of the given pattern
// indexes: exact subset DP up to dpMaxPatterns, greedy with one-step
// lookahead beyond (or when the run has more variables than the bitmask
// width). Deterministic: ties break toward lower estimated rows, then
// lower pattern index.
func planOrder(cm *costModel, pats []int, boundCols uint64, inRows float64) ([]int, float64) {
	n := len(pats)
	if n <= 1 {
		return append([]int(nil), pats...), 0
	}
	if n > dpMaxPatterns || len(cm.rp.vars) > 64 {
		return greedyLookahead(cm, pats, boundCols, inRows)
	}
	return dpOrder(cm, pats, boundCols, inRows)
}

// dpCell is one DP state: the best known way to have executed the subset.
type dpCell struct {
	cost, rows float64
	last       int8 // index into pats of the final pattern of the best path
	set        bool
}

// dpOrder is Selinger-style exhaustive search over pattern subsets.
func dpOrder(cm *costModel, pats []int, boundCols uint64, inRows float64) ([]int, float64) {
	n := len(pats)
	cols := make([]uint64, n)
	for i, p := range pats {
		cols[i] = cm.patternCols(p)
	}
	cells := make([]dpCell, 1<<uint(n))
	cells[0] = dpCell{rows: inRows, set: true, last: -1}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var best dpCell
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) == 0 {
				continue
			}
			prev := mask &^ (1 << uint(j))
			pc := cells[prev]
			bc := boundCols
			for k := 0; k < n; k++ {
				if prev&(1<<uint(k)) != 0 {
					bc |= cols[k]
				}
			}
			se := cm.step(pats[j], pc.rows, bc)
			cand := dpCell{cost: pc.cost + se.cost, rows: se.outRows, last: int8(j), set: true}
			if cand.cost > costCap {
				cand.cost = costCap
			}
			if !best.set || cand.cost < best.cost ||
				(cand.cost == best.cost && cand.rows < best.rows) ||
				(cand.cost == best.cost && cand.rows == best.rows && cand.last < best.last) {
				best = cand
			}
		}
		cells[mask] = best
	}
	// Reconstruct the order from the last pointers.
	order := make([]int, 0, n)
	mask := 1<<uint(n) - 1
	for mask != 0 {
		j := int(cells[mask].last)
		order = append(order, pats[j])
		mask &^= 1 << uint(j)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, cells[1<<uint(n)-1].cost
}

// greedyLookahead orders patterns by picking, at each step, the candidate
// minimizing its own cost plus the cheapest immediate follow-up — one step
// of lookahead on top of plain greedy, which avoids the classic trap of a
// cheap-now scan that unbinds nothing.
func greedyLookahead(cm *costModel, pats []int, boundCols uint64, inRows float64) ([]int, float64) {
	n := len(pats)
	remaining := append([]int(nil), pats...)
	order := make([]int, 0, n)
	rows, total := inRows, 0.0
	bc := boundCols
	for len(remaining) > 0 {
		bestIdx := -1
		bestScore, bestSelf := math.Inf(1), stepEstimate{}
		for idx, p := range remaining {
			se := cm.step(p, rows, bc)
			score := se.cost
			if len(remaining) > 1 {
				nbc := bc | cm.patternCols(p)
				follow := math.Inf(1)
				for idx2, p2 := range remaining {
					if idx2 == idx {
						continue
					}
					if c := cm.step(p2, se.outRows, nbc).cost; c < follow {
						follow = c
					}
				}
				score += follow
			}
			if bestIdx < 0 || score < bestScore ||
				(score == bestScore && se.outRows < bestSelf.outRows) {
				bestIdx, bestScore, bestSelf = idx, score, se
			}
		}
		p := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		order = append(order, p)
		total += bestSelf.cost
		rows = bestSelf.outRows
		bc |= cm.patternCols(p)
	}
	return order, total
}

// buildSteps walks an order through the cost model, filling per-step
// estimates, strategies and feedback provenance.
func buildSteps(cm *costModel, order []int, boundCols uint64, inRows float64) []planStep {
	steps := make([]planStep, len(order))
	rows := inRows
	bc := boundCols
	for i, p := range order {
		se := cm.step(p, rows, bc)
		steps[i] = planStep{
			pat:      p,
			strategy: se.strategy,
			planned:  true,
			estOut:   se.outRows,
			card:     se.card,
			fbSeeded: se.fbSeeded,
			fbCtx:    cm.ctxKey(p, bc),
		}
		rows = se.outRows
		bc |= cm.patternCols(p)
	}
	return steps
}

// attachFilters places each pushed-down filter on the earliest plan step
// after which every variable it mentions is bound — either outside the run
// (sureOutside) or by the scans executed so far. Filters whose variables
// are already bound before the run's first step attach to step 0 (they
// could not have been applied earlier or evalGroup would have done so).
func attachFilters(plan *bgpPlan, run []*TriplePattern, filters []*runFilter, sureOutside map[string]bool) {
	for _, f := range filters {
		placed := false
		boundHere := map[string]bool{}
		for i := range plan.steps {
			for _, v := range run[plan.steps[i].pat].Vars() {
				boundHere[v] = true
			}
			ok := true
			for v := range f.vars {
				if !sureOutside[v] && !boundHere[v] {
					ok = false
					break
				}
			}
			if ok {
				plan.steps[i].filters = append(plan.steps[i].filters, f)
				placed = true
				break
			}
		}
		if !placed {
			// Defensive: eligibility should guarantee placement; fall back to
			// the last step so the filter still applies within the run.
			last := len(plan.steps) - 1
			plan.steps[last].filters = append(plan.steps[last].filters, f)
		}
	}
}

// replanTail re-optimizes the remaining steps of a running plan after the
// step at index done produced liveRows rows (its estimate blown past the
// re-planning threshold). Pushed-down filters attached to the tail are
// re-placed on the new order. boundCols/sureBound describe the variables
// bound by the executed prefix plus the run's inputs.
func replanTail(plan *bgpPlan, cm *costModel, run []*TriplePattern, done int, liveRows int, boundCols uint64, sureBound map[string]bool) {
	tail := plan.steps[done+1:]
	if len(tail) < 2 {
		return
	}
	pats := make([]int, len(tail))
	var filters []*runFilter
	for i, s := range tail {
		pats[i] = s.pat
		filters = append(filters, s.filters...)
	}
	order, _ := planOrder(cm, pats, boundCols, float64(liveRows))
	steps := buildSteps(cm, order, boundCols, float64(liveRows))
	sub := &bgpPlan{steps: steps}
	attachFilters(sub, run, filters, sureBound)
	copy(tail, sub.steps)
	plan.replans++
}

// colsFromVars maps a set of variable names to a bitmask over the run
// plan's variable columns (names outside the run are ignored).
func colsFromVars(rp *runPlan, vars map[string]bool) uint64 {
	if len(rp.vars) > 64 {
		return 0
	}
	var mask uint64
	for v := range vars {
		if idx, ok := rp.varIdx[v]; ok {
			mask |= 1 << uint(idx)
		}
	}
	return mask
}

// cloneVarSet copies a variable set (nil clones to an empty, writable set).
func cloneVarSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// countVarUses counts every textual reference to each variable across a
// query — triple-pattern positions, filter/select/order/group/having
// expressions, BIND targets, VALUES columns, and the whole text of nested
// EXISTS groups, subqueries and MINUS blocks. materialize compares a run
// variable's in-run position count against this total: equality proves the
// variable is referenced nowhere else, so its bindings can be pruned at
// materialization (projection pushdown). star reports SELECT *, which
// disables pruning (every variable is observable). Overcounting is safe —
// it only keeps a variable alive; subqueries therefore fold into the same
// counter even though their scopes are distinct.
func countVarUses(q *Query) (map[string]int, bool) {
	c := map[string]int{}
	countQueryUses(q, c)
	return c, q.Select.Star
}

func countQueryUses(q *Query, c map[string]int) {
	for _, it := range q.Select.Items {
		if it.Expr != nil {
			countExprUses(it.Expr, c)
		}
		if it.Var != "" {
			c[it.Var]++
		}
	}
	if q.Where != nil {
		countGroupUses(q.Where, c)
	}
	for _, gc := range q.GroupBy {
		if gc.Expr != nil {
			countExprUses(gc.Expr, c)
		}
		if gc.Var != "" {
			c[gc.Var]++
		}
	}
	for _, h := range q.Having {
		countExprUses(h, c)
	}
	for _, oc := range q.OrderBy {
		countExprUses(oc.Expr, c)
	}
	for _, tp := range q.Template {
		countTripleUses(&tp, c)
	}
	for _, n := range q.Describe {
		if n.IsVar() && n.Var != "" {
			c[n.Var]++
		}
	}
}

func countGroupUses(gp *GroupPattern, c map[string]int) {
	for _, e := range gp.Elems {
		switch {
		case e.Triple != nil:
			countTripleUses(e.Triple, c)
		case e.Filter != nil:
			countExprUses(e.Filter, c)
		case e.Optional != nil:
			countGroupUses(e.Optional, c)
		case e.Union != nil:
			for _, alt := range e.Union.Alternatives {
				countGroupUses(alt, c)
			}
		case e.Group != nil:
			countGroupUses(e.Group, c)
		case e.Bind != nil:
			countExprUses(e.Bind.Expr, c)
			c[e.Bind.Var]++
		case e.Values != nil:
			for _, v := range e.Values.Vars {
				c[v]++
			}
		case e.SubQuery != nil:
			countQueryUses(e.SubQuery, c)
		case e.Minus != nil:
			countGroupUses(e.Minus, c)
		}
	}
}

// countTripleUses counts one occurrence per variable position, mirroring how
// materialize counts a run's in-pattern positions (see runVarUseCounts).
func countTripleUses(tp *TriplePattern, c map[string]int) {
	for _, n := range [3]Node{tp.S, tp.P, tp.O} {
		if n.IsVar() && n.Var != "" {
			c[n.Var]++
		}
	}
}

// countExprUses is collectExprVars with a counter — and unlike it, descends
// into EXISTS patterns, whose variable references must keep run variables
// alive.
func countExprUses(e Expr, c map[string]int) {
	switch x := e.(type) {
	case ExprVar:
		c[x.Name]++
	case ExprUnary:
		countExprUses(x.Sub, c)
	case ExprBinary:
		countExprUses(x.Left, c)
		countExprUses(x.Right, c)
	case ExprCall:
		for _, a := range x.Args {
			countExprUses(a, c)
		}
	case ExprIn:
		countExprUses(x.Left, c)
		for _, a := range x.List {
			countExprUses(a, c)
		}
	case ExprAggregate:
		if x.Arg != nil {
			countExprUses(x.Arg, c)
		}
	case ExprExists:
		countGroupUses(x.Pattern, c)
	}
}
