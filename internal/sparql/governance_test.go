package sparql

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/rdf"
)

// governanceGraph builds a graph whose cross products are large enough to
// need multiple pattern evaluations but small enough to stay fast.
func governanceGraph(n int) *rdf.Graph {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "ex:a%d ex:p %d .\n", i, i)
		fmt.Fprintf(&sb, "ex:b%d ex:q %d .\n", i, i)
		fmt.Fprintf(&sb, "ex:a%d ex:next ex:a%d .\n", i, (i+1)%n)
	}
	return rdf.MustLoadTurtle(sb.String())
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return q
}

// TestTimeoutMidJoin injects a delay at the join fault site so the
// evaluation reliably overruns a short deadline, and asserts the
// structured timeout comes back promptly with no partial results.
func TestTimeoutMidJoin(t *testing.T) {
	if err := fault.Configure("sparql.join=delay:50ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	g := governanceGraph(50)
	q := mustParse(t, "SELECT * WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?y }")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := ExecSelectCtx(ctx, g, q, Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res != nil {
		t.Fatalf("aborted query returned partial results: %d rows", len(res.Rows))
	}
	if AbortReason(err) != "timeout" {
		t.Fatalf("AbortReason = %q, want timeout", AbortReason(err))
	}
	if elapsed > time.Second {
		t.Fatalf("abort took %s, cancellation not cooperative", elapsed)
	}
}

// TestCancelMidPath cancels the context while a property-path expansion is
// underway (held open by an injected delay at the path fault site).
func TestCancelMidPath(t *testing.T) {
	if err := fault.Configure("sparql.path=delay:1s"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	g := governanceGraph(30)
	q := mustParse(t, "SELECT * WHERE { ?a (<http://e/next>)+ ?b }")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ExecSelectCtx(ctx, g, q, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if AbortReason(err) != "cancelled" {
		t.Fatalf("AbortReason = %q, want cancelled", AbortReason(err))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel took %s", elapsed)
	}
}

// TestRowBudgetKillsCrossProduct asserts a cross product dies with a typed
// budget error once its intermediate binding set exceeds the row budget.
func TestRowBudgetKillsCrossProduct(t *testing.T) {
	g := governanceGraph(200) // cross product would be 40 000 rows
	q := mustParse(t, "SELECT * WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?y }")
	_, err := ExecSelectCtx(context.Background(), g, q, Options{
		Limits: Limits{MaxIntermediateRows: 1000},
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Resource != "rows" {
		t.Fatalf("Resource = %q, want rows", be.Resource)
	}
	if be.Used <= be.Limit {
		t.Fatalf("Used %d should exceed Limit %d", be.Used, be.Limit)
	}
	if AbortReason(err) != "budget" {
		t.Fatalf("AbortReason = %q, want budget", AbortReason(err))
	}
}

// TestRowBudgetAllowsSmallQueries: a query under the budget is unaffected.
func TestRowBudgetAllowsSmallQueries(t *testing.T) {
	g := governanceGraph(20)
	q := mustParse(t, "SELECT * WHERE { ?a <http://e/p> ?x }")
	res, err := ExecSelectCtx(context.Background(), g, q, Options{
		Limits: Limits{MaxIntermediateRows: 1000},
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(res.Rows))
	}
}

// TestPathDepthBudget caps BFS depth below the diameter of a cycle.
func TestPathDepthBudget(t *testing.T) {
	g := governanceGraph(100)
	q := mustParse(t, "SELECT * WHERE { <http://e/a0> (<http://e/next>)+ ?b }")
	_, err := ExecSelectCtx(context.Background(), g, q, Options{
		Limits: Limits{MaxPathDepth: 5},
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "path_depth" {
		t.Fatalf("want path_depth BudgetError, got %v", err)
	}
}

// TestPathVisitedBudget caps the visited set of a path expansion.
func TestPathVisitedBudget(t *testing.T) {
	g := governanceGraph(100)
	q := mustParse(t, "SELECT * WHERE { <http://e/a0> (<http://e/next>)+ ?b }")
	_, err := ExecSelectCtx(context.Background(), g, q, Options{
		Limits: Limits{MaxPathVisited: 10},
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "path_visited" {
		t.Fatalf("want path_visited BudgetError, got %v", err)
	}
}

// TestUnlimitedPathCaps: negative caps disable the default governance.
func TestUnlimitedPathCaps(t *testing.T) {
	g := governanceGraph(50)
	q := mustParse(t, "SELECT * WHERE { <http://e/a0> (<http://e/next>)+ ?b }")
	res, err := ExecSelectCtx(context.Background(), g, q, Options{
		Limits: Limits{MaxPathDepth: -1, MaxPathVisited: -1},
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	// The BFS visited-set includes the start node, so a cycle yields every
	// node except the origin itself: 49 of the 50.
	if len(res.Rows) != 49 {
		t.Fatalf("got %d rows, want 49 (rest of the cycle)", len(res.Rows))
	}
}

// TestUpdateCtxAborted: a cancelled update applies nothing.
func TestUpdateCtxAborted(t *testing.T) {
	g := governanceGraph(20)
	before := g.Len()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecUpdateCtx(ctx, g, "DELETE WHERE { ?s <http://e/p> ?o }")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if g.Len() != before {
		t.Fatalf("aborted update mutated the graph: %d -> %d triples", before, g.Len())
	}
}

// TestDeadlineDifferential: a generous deadline must not change results —
// the serialized answer is byte-identical to the no-deadline run. This
// pins down that cancellation polling has no effect on query semantics.
func TestDeadlineDifferential(t *testing.T) {
	g := governanceGraph(60)
	queries := []string{
		"SELECT * WHERE { ?a <http://e/p> ?x . ?a <http://e/next> ?b }",
		"SELECT ?x (COUNT(*) AS ?n) WHERE { ?a <http://e/p> ?x } GROUP BY ?x ORDER BY ?x",
		"SELECT * WHERE { ?a (<http://e/next>)+ ?b }",
		"SELECT * WHERE { ?a <http://e/p> ?x . OPTIONAL { ?a <http://e/next> ?b } }",
	}
	for _, src := range queries {
		q := mustParse(t, src)
		plain, err := ExecSelectOpts(g, q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		bounded, err := ExecSelectCtx(ctx, g, q, Options{})
		cancel()
		if err != nil {
			t.Fatalf("%s under deadline: %v", src, err)
		}
		plain.Sort()
		bounded.Sort()
		var a, b bytes.Buffer
		plain.WriteJSON(&a)
		bounded.WriteJSON(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: deadline changed the answer\nplain:   %s\nbounded: %s", src, a.String(), b.String())
		}
	}
}

// TestBudgetErrorMessage pins the error text shape operators will grep for.
func TestBudgetErrorMessage(t *testing.T) {
	e := &BudgetError{Resource: "rows", Used: 2048, Limit: 1000}
	msg := e.Error()
	for _, want := range []string{"rows", "2048", "1000"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("BudgetError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(e, ErrBudgetExceeded) {
		t.Fatal("BudgetError does not match ErrBudgetExceeded")
	}
}
