package sparql

import (
	"testing"

	"rdfanalytics/internal/rdf"
)

func TestInsertData(t *testing.T) {
	g := rdf.NewGraph()
	res, err := ExecUpdate(g, `PREFIX ex: <http://e/>
INSERT DATA {
  ex:a ex:p ex:b .
  ex:a ex:q 42 .
  ex:a ex:q 42 .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 { // duplicate counted once
		t.Fatalf("inserted = %d", res.Inserted)
	}
	if !g.Has(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/q"), O: rdf.NewInteger(42)}) {
		t.Error("typed literal missing")
	}
}

func TestDeleteData(t *testing.T) {
	g := invoices(t)
	before := g.Len()
	res, err := ExecUpdate(g, `PREFIX ex: <http://e/>
DELETE DATA { ex:i1 ex:inQuantity 200 . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || g.Len() != before-1 {
		t.Fatalf("deleted = %d, len %d -> %d", res.Deleted, before, g.Len())
	}
	// Deleting again is a no-op.
	res, _ = ExecUpdate(g, `PREFIX ex: <http://e/>
DELETE DATA { ex:i1 ex:inQuantity 200 . }`)
	if res.Deleted != 0 {
		t.Fatalf("re-delete = %d", res.Deleted)
	}
}

func TestDeleteWhere(t *testing.T) {
	g := invoices(t)
	res, err := ExecUpdate(g, `PREFIX ex: <http://e/>
DELETE WHERE { ?i ex:delivers ex:pepsi . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 { // i2, i7
		t.Fatalf("deleted = %d", res.Deleted)
	}
	if n := g.MatchCount(rdf.Any, rdf.NewIRI("http://e/delivers"), rdf.NewIRI("http://e/pepsi")); n != 0 {
		t.Fatalf("pepsi deliveries remain: %d", n)
	}
	// Other triples of i2 survive (only the matched patterns are deleted).
	if g.MatchCount(rdf.NewIRI("http://e/i2"), rdf.Any, rdf.Any) == 0 {
		t.Error("unrelated triples of i2 deleted")
	}
}

func TestModifyDeleteInsertWhere(t *testing.T) {
	g := invoices(t)
	// Rename the property takesPlaceAt -> atBranch.
	res, err := ExecUpdate(g, `PREFIX ex: <http://e/>
DELETE { ?i ex:takesPlaceAt ?b }
INSERT { ?i ex:atBranch ?b }
WHERE { ?i ex:takesPlaceAt ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 7 || res.Inserted != 7 {
		t.Fatalf("deleted=%d inserted=%d", res.Deleted, res.Inserted)
	}
	if g.PredicateCount(rdf.NewIRI("http://e/takesPlaceAt")) != 0 {
		t.Error("old property remains")
	}
	if g.PredicateCount(rdf.NewIRI("http://e/atBranch")) != 7 {
		t.Error("new property missing")
	}
}

func TestInsertWhere(t *testing.T) {
	g := invoices(t)
	// Materialize the delivers/brand composition as a direct property.
	res, err := ExecUpdate(g, `PREFIX ex: <http://e/>
INSERT { ?i ex:brandOf ?b } WHERE { ?i ex:delivers ?p . ?p ex:brand ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 7 {
		t.Fatalf("inserted = %d", res.Inserted)
	}
}

func TestClearAll(t *testing.T) {
	g := invoices(t)
	res, err := ExecUpdate(g, `CLEAR ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 || res.Deleted == 0 {
		t.Fatalf("len = %d, deleted = %d", g.Len(), res.Deleted)
	}
}

func TestUpdateErrors(t *testing.T) {
	g := rdf.NewGraph()
	bad := []string{
		`INSERT DATA { ?x <http://e/p> 1 . }`, // variable in DATA
		`INSERT DATA { <http://e/a> <http://e/p> }`,
		`DELETE`,
		`FROB ALL`,
		`INSERT { <http://e/a> <http://e/p> 1 }`, // missing WHERE
	}
	for _, src := range bad {
		if _, err := ExecUpdate(g, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestUpdatePrefixes(t *testing.T) {
	g := rdf.NewGraph()
	if _, err := ExecUpdate(g, `PREFIX a: <http://a/>
PREFIX b: <http://b/>
INSERT DATA { a:x b:p a:y . }`); err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.Triple{S: rdf.NewIRI("http://a/x"), P: rdf.NewIRI("http://b/p"), O: rdf.NewIRI("http://a/y")}) {
		t.Error("prefixed insert failed")
	}
}

// TestUpdateThenQuery: updates and queries compose (the answer-as-dataset
// flow could be driven through the endpoint this way).
func TestUpdateThenQuery(t *testing.T) {
	g := rdf.NewGraph()
	ExecUpdate(g, `PREFIX ex: <http://e/>
INSERT DATA {
  ex:t1 ex:branch ex:b1 . ex:t1 ex:total 300 .
  ex:t2 ex:branch ex:b2 . ex:t2 ex:total 600 .
}`)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b WHERE { ?t ex:branch ?b . ?t ex:total ?v . FILTER(?v > 300) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["b"].LocalName() != "b2" {
		t.Fatalf("rows: %s", res)
	}
}
