package sparql

import (
	"strings"
	"testing"
)

func TestExplainJoinOrder(t *testing.T) {
	g := invoices(t)
	plan, err := Explain(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE {
  ?i ?p ?o .
  ?i ex:delivers ex:fanta .
}`)
	if err != nil {
		t.Fatal(err)
	}
	// The selective pattern (delivers fanta, est. 1) must be scheduled
	// before the full scan.
	fanta := strings.Index(plan, "fanta")
	scanAll := strings.Index(plan, "?i ?p ?o")
	if fanta < 0 || scanAll < 0 || fanta > scanAll {
		t.Errorf("selective pattern not first:\n%s", plan)
	}
	if !strings.Contains(plan, "est. 1") {
		t.Errorf("estimates missing:\n%s", plan)
	}
}

func TestExplainClauses(t *testing.T) {
	g := invoices(t)
	plan, err := Explain(g, `PREFIX ex: <http://e/>
SELECT DISTINCT ?b (SUM(?q) AS ?t) WHERE {
  ?i ex:takesPlaceAt ?b .
  ?i ex:inQuantity ?q .
  FILTER(?q > 10)
  OPTIONAL { ?i ex:note ?n }
  FILTER(BOUND(?n))
  { SELECT ?z WHERE { ?z ex:brand ?w } }
  BIND(?q * 2 AS ?qq)
  VALUES ?v { 1 2 }
  MINUS { ?i ex:delivers ex:coca }
  { ?i ex:a ?x } UNION { ?i ex:b ?x }
} GROUP BY ?b HAVING (SUM(?q) > 0) ORDER BY ?b LIMIT 5 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(in-run)", "at group end", "optional {", "subquery {",
		"bind", "values", "minus {", "union of 2", "group by", "having",
		"order by", "distinct", "limit 5 offset 1",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	g := invoices(t)
	if _, err := Explain(g, `ASK { ?s ?p ?o }`); err == nil {
		t.Error("ASK accepted by Explain")
	}
	if _, err := Explain(g, `NOT A QUERY`); err == nil {
		t.Error("garbage accepted by Explain")
	}
}
