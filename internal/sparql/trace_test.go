package sparql

import (
	"strings"
	"testing"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
)

// Differential test for the tracing layer: evaluation with Options.Trace set
// must produce exactly the same Results — same vars, same rows in the same
// order — as evaluation without it. Tracing only records, never steers.
func TestTraceDifferential(t *testing.T) {
	corp := append([]string{}, parallelCorpus...)
	corp = append(corp,
		`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?v . MINUS { ?s ex:tag ex:hot } } LIMIT 50`,
		`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link/ex:w ?w } ORDER BY ?s ?w LIMIT 50`,
		`PREFIX ex: <http://e/> SELECT ?t (COUNT(?s) AS ?n) WHERE { { SELECT ?s ?t WHERE { ?s ex:link ?t } } } GROUP BY ?t ORDER BY ?t`,
	)

	for gname, g := range map[string]*rdf.Graph{
		"invoices": invoices(t),
		"chain":    chainGraph(300),
	} {
		for _, src := range corp {
			q := MustParse(src)
			plain, err := ExecSelectOpts(g, q, Options{})
			if err != nil {
				t.Fatalf("%s %q: untraced: %v", gname, src, err)
			}
			tr := obs.NewTrace("query")
			traced, err := ExecSelectOpts(g, q, Options{Trace: tr})
			tr.Finish()
			if err != nil {
				t.Fatalf("%s %q: traced: %v", gname, src, err)
			}
			assertSameResults(t, gname+" "+src, plain, traced)
			if tr.Root().Duration() <= 0 {
				t.Fatalf("%s %q: trace root has no duration", gname, src)
			}
		}
	}
}

// TestTraceSpansRecorded checks the span tree for a join query contains the
// phases the telemetry contract promises: match → bgp → plan + scan, plus
// modifiers, with row counts and a join strategy attached.
func TestTraceSpansRecorded(t *testing.T) {
	g := chainGraph(300)
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?s ?w WHERE { ?s ex:v ?v . ?s ex:link ?t . ?t ex:w ?w . FILTER(?w < 40) } ORDER BY ?s LIMIT 20`)
	tr := obs.NewTrace("query")
	if _, err := ExecSelectOpts(g, q, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	names := map[string]int{}
	var walk func(s *obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		names[s.Name]++
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	exported := tr.Export()
	walk(&exported)

	for _, want := range []string{"match", "bgp", "plan", "scan", "filter", "modifiers"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace:\n%s", want, tr.Tree())
		}
	}
	if names["scan"] < 3 {
		t.Errorf("expected one scan span per triple pattern (3), got %d", names["scan"])
	}

	tree := tr.Tree()
	for _, frag := range []string{"strategy=", "rows_out=", "stats_cache_hits="} {
		if !strings.Contains(tree, frag) {
			t.Errorf("trace tree missing %q:\n%s", frag, tree)
		}
	}
}

// TestTraceOptionalUnionSpans drives the OPTIONAL/UNION/path/MINUS code
// paths and checks their spans appear in the tree.
func TestTraceOptionalUnionSpans(t *testing.T) {
	g := chainGraph(300)
	for src, want := range map[string]string{
		`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?n . OPTIONAL { ?s ex:tag ?g } } LIMIT 10`: "optional",
		`PREFIX ex: <http://e/> SELECT ?s WHERE { { ?s ex:tag ex:hot } UNION { ?s ex:w ?w } }`:       "union",
		`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link/ex:w ?w } LIMIT 5`:                   "path_scan",
		`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?v . MINUS { ?s ex:tag ex:hot } }`:         "minus",
	} {
		tr := obs.NewTrace("query")
		if _, err := ExecSelectOpts(g, MustParse(src), Options{Trace: tr}); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		tr.Finish()
		if !strings.Contains(tr.Tree(), want) {
			t.Errorf("%q: span %q missing:\n%s", src, want, tr.Tree())
		}
	}
}
