package sparql

import (
	"strings"
	"testing"
)

func fpOf(t *testing.T, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Fingerprint(q)
}

// TestFingerprintStripsConstants: queries that differ only in literal
// values or subject/object IRIs share one fingerprint.
func TestFingerprintStripsConstants(t *testing.T) {
	a := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v 5 . FILTER(?s != ex:s1) } LIMIT 10`)
	b := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v 99 . FILTER(?s != ex:s42) } LIMIT 500`)
	if a != b {
		t.Errorf("constant-only difference changed fingerprint:\n%s\n%s", a, b)
	}
	if strings.Contains(a, "5") && strings.Contains(a, "ex:s1") {
		t.Errorf("fingerprint leaks constants: %s", a)
	}
}

// TestFingerprintCanonicalizesVariables: renaming variables does not change
// the fingerprint.
func TestFingerprintCanonicalizesVariables(t *testing.T) {
	a := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link ?t . ?t ex:w ?w }`)
	b := fpOf(t, `PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x ex:link ?mid . ?mid ex:w ?y }`)
	if a != b {
		t.Errorf("variable renaming changed fingerprint:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "?v1") {
		t.Errorf("fingerprint not canonicalized: %s", a)
	}
}

// TestFingerprintKeepsShape: predicates, rdf:type classes, and structural
// differences must all separate fingerprints.
func TestFingerprintKeepsShape(t *testing.T) {
	base := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?o }`)
	cases := map[string]string{
		"different predicate": `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:w ?o }`,
		"added pattern":       `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?o . ?s ex:w ?x }`,
		"distinct":            `PREFIX ex: <http://e/> SELECT DISTINCT ?s WHERE { ?s ex:v ?o }`,
		"with limit":          `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?o } LIMIT 5`,
		"grouped":             `PREFIX ex: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s ex:v ?o }`,
	}
	for name, src := range cases {
		if got := fpOf(t, src); got == base {
			t.Errorf("%s: fingerprint did not change: %s", name, got)
		}
	}
	// rdf:type objects are classes — part of the shape, not a constant.
	people := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Person }`)
	orders := fpOf(t, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Order }`)
	if people == orders {
		t.Error("rdf:type class stripped from fingerprint; classes define shape")
	}
}

func TestFingerprintModifiersAndOperators(t *testing.T) {
	fp := fpOf(t, `PREFIX ex: <http://e/>
SELECT ?t (SUM(?v) AS ?total) WHERE {
  ?s ex:link+ ?t . ?s ex:v ?v .
  OPTIONAL { ?s ex:tag ?g } MINUS { ?s ex:tag ex:cold }
} GROUP BY ?t HAVING (SUM(?v) > 10) ORDER BY DESC(?total) LIMIT 3 OFFSET 1`)
	for _, want := range []string{"optional", "minus", "group(", "having(", "order(", "limit", "offset", "SUM"} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint missing %q: %s", want, fp)
		}
	}
}

func TestFingerprintQueryAndID(t *testing.T) {
	if FingerprintQuery("THIS IS NOT SPARQL") != "unparseable" {
		t.Error("unparseable input must map to the sentinel fingerprint")
	}
	fp := FingerprintQuery(`SELECT ?s WHERE { ?s ?p ?o }`)
	id := FingerprintID(fp)
	if len(id) != 16 {
		t.Errorf("FingerprintID length = %d, want 16 hex chars", len(id))
	}
	if id != FingerprintID(fp) {
		t.Error("FingerprintID not stable")
	}
	if id == FingerprintID("unparseable") {
		t.Error("distinct fingerprints collide")
	}
}
