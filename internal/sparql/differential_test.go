package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

// Differential testing: the engine's BGP evaluation (with join reordering
// and index lookups) must agree with a naive reference evaluator (nested
// loops over the full triple list, textual order) on random graphs and
// random conjunctive queries.

// naiveBGP evaluates triple patterns by brute force.
func naiveBGP(triples []rdf.Triple, patterns []TriplePattern) []Binding {
	results := []Binding{{}}
	for _, tp := range patterns {
		var next []Binding
		for _, b := range results {
			for _, tr := range triples {
				nb := b.clone()
				if !naiveBind(nb, tp.S, tr.S) || !naiveBind(nb, tp.P, tr.P) || !naiveBind(nb, tp.O, tr.O) {
					continue
				}
				next = append(next, nb)
			}
		}
		results = next
	}
	return results
}

func naiveBind(b Binding, n Node, t rdf.Term) bool {
	if !n.IsVar() {
		return n.Term == t
	}
	if cur, ok := b[n.Var]; ok {
		return cur == t
	}
	b[n.Var] = t
	return true
}

func canonical(rows []Binding, vars []string) []string {
	out := make([]string, 0, len(rows))
	for _, b := range rows {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := b[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('|')
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func randomGraph(rng *rand.Rand, n int) (*rdf.Graph, []rdf.Triple) {
	g := rdf.NewGraph()
	subjects := []rdf.Term{}
	for i := 0; i < 4; i++ {
		subjects = append(subjects, rdf.NewIRI(fmt.Sprintf("http://e/s%d", i)))
	}
	preds := []rdf.Term{}
	for i := 0; i < 3; i++ {
		preds = append(preds, rdf.NewIRI(fmt.Sprintf("http://e/p%d", i)))
	}
	objects := append([]rdf.Term{}, subjects...)
	for i := 0; i < 3; i++ {
		objects = append(objects, rdf.NewInteger(int64(i)))
	}
	for i := 0; i < n; i++ {
		g.Add(rdf.Triple{
			S: subjects[rng.Intn(len(subjects))],
			P: preds[rng.Intn(len(preds))],
			O: objects[rng.Intn(len(objects))],
		})
	}
	return g, g.Triples()
}

func randomPattern(rng *rand.Rand) TriplePattern {
	vars := []string{"a", "b", "c"}
	mkNode := func(pool []rdf.Term) Node {
		if rng.Intn(2) == 0 {
			return Var(vars[rng.Intn(len(vars))])
		}
		return TermNode(pool[rng.Intn(len(pool))])
	}
	subjects := []rdf.Term{
		rdf.NewIRI("http://e/s0"), rdf.NewIRI("http://e/s1"),
		rdf.NewIRI("http://e/s2"), rdf.NewIRI("http://e/s3"),
	}
	preds := []rdf.Term{
		rdf.NewIRI("http://e/p0"), rdf.NewIRI("http://e/p1"), rdf.NewIRI("http://e/p2"),
	}
	objects := append([]rdf.Term{rdf.NewInteger(0), rdf.NewInteger(1), rdf.NewInteger(2)}, subjects...)
	return TriplePattern{S: mkNode(subjects), P: mkNode(preds), O: mkNode(objects)}
}

func TestBGPDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		g, triples := randomGraph(rng, 3+rng.Intn(25))
		nPatterns := 1 + rng.Intn(3)
		patterns := make([]TriplePattern, nPatterns)
		varSet := map[string]bool{}
		for i := range patterns {
			patterns[i] = randomPattern(rng)
			for _, v := range patterns[i].Vars() {
				varSet[v] = true
			}
		}
		var vars []string
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		// Engine evaluation.
		gp := &GroupPattern{}
		for i := range patterns {
			tp := patterns[i]
			gp.Elems = append(gp.Elems, PatternElem{Triple: &tp})
		}
		ev := newEvaluator(context.Background(), g, Options{})
		engine := ev.evalGroup(gp, []Binding{{}})
		// Reference evaluation.
		ref := naiveBGP(triples, patterns)
		got := canonical(engine, vars)
		want := canonical(ref, vars)
		if len(got) != len(want) {
			t.Fatalf("trial %d: engine %d rows, reference %d rows\npatterns: %v",
				trial, len(got), len(want), patterns)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %d differs:\n  engine:    %q\n  reference: %q\npatterns: %v",
					trial, i, got[i], want[i], patterns)
			}
		}
	}
}

// TestFilterDifferential: numeric FILTER conditions agree with direct
// post-filtering of the naive results.
func TestFilterDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g, triples := randomGraph(rng, 5+rng.Intn(20))
		tp := TriplePattern{S: Var("a"), P: TermNode(rdf.NewIRI("http://e/p0")), O: Var("b")}
		threshold := int64(rng.Intn(3))
		src := fmt.Sprintf(
			`SELECT ?a ?b WHERE { ?a <http://e/p0> ?b . FILTER(?b >= %d) }`, threshold)
		res, err := Select(g, src)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: naive + manual filter.
		var want int
		for _, b := range naiveBGP(triples, []TriplePattern{tp}) {
			if n, ok := b["b"].Int(); ok && n >= threshold {
				want++
			}
		}
		if res.Len() != want {
			t.Fatalf("trial %d: engine %d rows, reference %d", trial, res.Len(), want)
		}
	}
}

// TestPushdownDifferential: filter pushdown must not change results, for
// random graphs, patterns and filter positions — including filters placed
// *before* the patterns binding their variables, OPTIONAL interactions and
// BOUND conditions.
func TestPushdownDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		`SELECT ?a ?b WHERE { FILTER(?b >= 1) ?a <http://e/p0> ?b . }`,
		`SELECT ?a ?b WHERE { ?a <http://e/p0> ?b . FILTER(?b >= 1) ?a <http://e/p1> ?c . }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . OPTIONAL { ?a <http://e/p1> ?c } FILTER(!BOUND(?c)) }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . OPTIONAL { ?a <http://e/p1> ?c } FILTER(BOUND(?c)) }`,
		`SELECT ?a WHERE { { ?a <http://e/p0> ?b } UNION { ?a <http://e/p1> ?b } FILTER(?b != 0) }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . FILTER(?b = ?c) ?a <http://e/p2> ?c . }`,
	}
	for trial := 0; trial < 60; trial++ {
		g, _ := randomGraph(rng, 5+rng.Intn(25))
		for _, src := range queries {
			q := MustParse(src)
			with, err := ExecSelect(g, q)
			if err != nil {
				t.Fatal(err)
			}
			without, err := ExecSelectOpts(g, q, Options{NoPushdown: true})
			if err != nil {
				t.Fatal(err)
			}
			a := canonical(with.Rows, with.Vars)
			b := canonical(without.Rows, without.Vars)
			if len(a) != len(b) {
				t.Fatalf("trial %d %q: pushdown %d rows, plain %d", trial, src, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d %q: row %d differs\n%q\n%q", trial, src, i, a[i], b[i])
				}
			}
		}
	}
}

// BenchmarkFilterPushdown — ablation: early filter application vs
// group-end filtering on a selective filter over a large intermediate join.
func BenchmarkFilterPushdown(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "ex:s%d ex:v %d .\n", i, i)
		fmt.Fprintf(&sb, "ex:s%d ex:link ex:t%d .\n", i, i%50)
		fmt.Fprintf(&sb, "ex:t%d ex:w %d .\n", i%50, i%50)
	}
	g := rdf.MustLoadTurtle(sb.String())
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?s ?w WHERE {
  ?s ex:v ?v .
  FILTER(?v < 10)
  ?s ex:link ?t .
  ?t ex:w ?w .
}`)
	b.Run("pushdown", func(b *testing.B) {
		for b.Loop() {
			if _, err := ExecSelect(g, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group-end", func(b *testing.B) {
		for b.Loop() {
			if _, err := ExecSelectOpts(g, q, Options{NoPushdown: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAggregateDifferential: SUM/COUNT per group agree with manual
// aggregation of naive results.
func TestAggregateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		g, triples := randomGraph(rng, 5+rng.Intn(30))
		src := `SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a <http://e/p1> ?b } GROUP BY ?a`
		res, err := Select(g, src)
		if err != nil {
			t.Fatal(err)
		}
		tp := TriplePattern{S: Var("a"), P: TermNode(rdf.NewIRI("http://e/p1")), O: Var("b")}
		want := map[rdf.Term]int64{}
		for _, b := range naiveBGP(triples, []TriplePattern{tp}) {
			want[b["a"]]++
		}
		if res.Len() != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, res.Len(), len(want))
		}
		for _, row := range res.Rows {
			n, _ := row["n"].Int()
			if n != want[row["a"]] {
				t.Fatalf("trial %d: group %v count %d, want %d", trial, row["a"], n, want[row["a"]])
			}
		}
	}
}
