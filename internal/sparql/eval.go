package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/par"
	"rdfanalytics/internal/rdf"
)

// evaluator executes parsed queries against a graph.
type evaluator struct {
	g *rdf.Graph
	// noReorder disables selectivity-based BGP join ordering (ablation #3
	// in DESIGN.md): patterns evaluate in textual order.
	noReorder bool
	// noPushdown disables early filter application: filters evaluate only
	// after the whole group, as the SPARQL algebra literally states.
	noPushdown bool
	// workers is the resolved worker-pool size for partitioned BGP
	// evaluation (always >= 1; 1 means fully sequential).
	workers int
	// cur is the span new trace children attach under; nil when tracing is
	// off, in which case every span site is a single pointer test.
	cur *obs.Span
	// prof is the profile node new operator records attach under; nil when
	// profiling is off, same single-pointer-test convention as cur.
	prof *ProfNode
	// cancel is the shared abort state (deadline, client disconnect, budget
	// kill); see limits.go. Never nil.
	cancel *evalCancel
	// limits are the resolved resource caps for this evaluation.
	limits Limits
	// planner is the resolved BGP planner mode (PlannerAuto is resolved at
	// construction, so this is never PlannerAuto).
	planner PlannerMode
	// fbSites is the per-query feedback snapshot: scan site key (label +
	// bound-variable context) → observed (input, output) cardinality for
	// this query's fingerprint, taken once at construction so planning and
	// mid-query replans never lock the store. Nil when feedback is off or
	// the fingerprint has no valid entries.
	fbSites map[string]SiteActual
	// replanFactor is the mid-query re-planning trigger: a scan whose actual
	// output exceeds its estimate by this factor re-optimizes the remaining
	// patterns of its run. 0 disables adaptive re-planning.
	replanFactor float64
	// varUses counts every textual reference to each variable across the
	// current SELECT query; materialize uses it to skip run-local variables
	// (projection pushdown). Nil (pruning off) outside execSelect.
	varUses map[string]int
	// varStar disables projection pruning for SELECT * queries.
	varStar bool
}

// overBudget checks a materialized intermediate binding set against the row
// budget, aborting the evaluation when it is exceeded. (Joins additionally
// account rows incrementally while producing; this is the operator-boundary
// backstop for OPTIONAL, UNION, VALUES, paths and subqueries.)
func (ev *evaluator) overBudget(n int) bool {
	if ev.limits.MaxIntermediateRows > 0 && n > ev.limits.MaxIntermediateRows {
		ev.cancel.abort(&BudgetError{Resource: "rows", Used: n, Limit: ev.limits.MaxIntermediateRows})
		return true
	}
	return false
}

// Options tune query evaluation.
type Options struct {
	// NoReorder evaluates BGPs in textual order instead of
	// selectivity-ordered (for the join-ordering ablation).
	NoReorder bool
	// NoPushdown applies filters only at group end (for the filter-pushdown
	// ablation).
	NoPushdown bool
	// Parallelism is the worker-pool size for BGP evaluation: input-binding
	// slices above a threshold are partitioned across this many goroutines
	// (results merge in input order, so answers are identical at every
	// setting — the DESIGN.md §5 decision-5 ablation). 0 means GOMAXPROCS;
	// 1 forces sequential evaluation.
	Parallelism int
	// Trace, when non-nil, receives a span tree of the evaluation: the
	// match/aggregate/modifier phases, each BGP run with its join strategy
	// and row counts, filters, and nested constructs. Tracing never changes
	// results, only records them (see TestTraceDifferential).
	Trace *obs.Trace
	// Profile, when non-nil, receives an operator-level runtime profile of
	// the evaluation (EXPLAIN ANALYZE): per-operator wall time, rows in/out
	// and estimated-vs-actual cardinality with q-error. Like tracing,
	// profiling never changes results (see TestProfileDifferential).
	Profile *Profile
	// Limits bounds the resources the evaluation may consume (row budget on
	// intermediate binding sets, property-path depth/visited caps); the
	// zero value means "no row budget, default path caps". Violations
	// return a *BudgetError matching ErrBudgetExceeded.
	Limits
	// Planner selects the BGP join-order planner. The zero value
	// (PlannerAuto) resolves to PlannerFeedback when Feedback is set and
	// PlannerDP otherwise; PlannerGreedy keeps the legacy single-pass
	// orderer for ablation runs. Ignored when NoReorder is set (textual
	// order wins).
	Planner PlannerMode
	// Feedback, when non-nil, closes the q-error loop: scans of a query
	// whose FingerprintID ran before (on the current graph version) are
	// costed with their observed actual cardinalities, and — when Profile
	// is also set — the finished query's actuals are folded back into the
	// store for the next replan of the same fingerprint.
	Feedback *FeedbackStore
	// FingerprintID keys feedback lookups and observations; use
	// FingerprintID(Fingerprint(q)). Feedback is inert without it.
	FingerprintID string
	// ReplanQError is the adaptive re-planning trigger: when a scan's
	// actual cardinality exceeds its estimate by this factor and at least
	// two patterns of the run remain, the rest of the run is re-optimized
	// with the observed row count. 0 means the default (8); negative
	// disables mid-query re-planning. Only cost-based planners replan.
	ReplanQError float64
}

func newEvaluator(ctx context.Context, g *rdf.Graph, opts Options) *evaluator {
	if ctx == nil {
		ctx = context.Background()
	}
	mode := opts.Planner
	if mode == PlannerAuto {
		if opts.Feedback != nil {
			mode = PlannerFeedback
		} else {
			mode = PlannerDP
		}
	}
	replan := opts.ReplanQError
	switch {
	case replan == 0:
		replan = defaultReplanQError
	case replan < 0:
		replan = 0
	}
	ev := &evaluator{
		g:            g,
		noReorder:    opts.NoReorder,
		noPushdown:   opts.NoPushdown,
		workers:      par.Workers(opts.Parallelism),
		cur:          opts.Trace.Root(),
		prof:         opts.Profile.Root(),
		cancel:       &evalCancel{ctx: ctx},
		limits:       opts.Limits,
		planner:      mode,
		replanFactor: replan,
	}
	if mode == PlannerFeedback && opts.Feedback != nil && g != nil {
		ev.fbSites = opts.Feedback.SiteActuals(opts.FingerprintID, g.Version())
	}
	return ev
}

// ExecSelectOpts executes a parsed SELECT query with explicit options.
func ExecSelectOpts(g *rdf.Graph, q *Query, opts Options) (*Results, error) {
	return ExecSelectCtx(context.Background(), g, q, opts)
}

// ExecSelectCtx executes a parsed SELECT query under a context: evaluation
// polls ctx cooperatively (at operator boundaries and inside join/path/scan
// loops, including worker-pool partitions) and aborts with ctx.Err() when
// the deadline passes or the context is cancelled. Resource-limit
// violations abort with a *BudgetError. Aborted evaluations never return
// partial results.
func ExecSelectCtx(ctx context.Context, g *rdf.Graph, q *Query, opts Options) (*Results, error) {
	start := time.Now()
	ev := newEvaluator(ctx, g, opts)
	res, err := ev.execSelect(q, []Binding{{}})
	observeSince(execSeconds, start)
	if p := opts.Profile; p != nil {
		rows := 0
		if res != nil {
			rows = len(res.Rows)
		}
		p.SetTraceID(opts.Trace.ID())
		p.root.record(time.Since(start), 1, rows)
		p.emitMetrics()
		if err == nil && opts.Feedback != nil && opts.FingerprintID != "" {
			// Close the loop: fold this run's per-scan actuals into the
			// feedback store so the next replan of the same fingerprint
			// plans with true cardinalities.
			opts.Feedback.Observe(opts.FingerprintID, g.Version(), p.Estimates())
		}
	}
	if err != nil {
		observeAbort(opts.Trace.Root(), err)
		return nil, err
	}
	return res, nil
}

// Select parses and executes a SELECT query.
func Select(g *rdf.Graph, src string) (*Results, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Form != FormSelect {
		return nil, fmt.Errorf("sparql: not a SELECT query")
	}
	return ExecSelect(g, q)
}

// Ask parses and executes an ASK query.
func Ask(g *rdf.Graph, src string) (bool, error) {
	return AskCtx(context.Background(), g, src)
}

// AskCtx is Ask under a context (see ExecSelectCtx for the semantics).
func AskCtx(ctx context.Context, g *rdf.Graph, src string) (bool, error) {
	q, err := Parse(src)
	if err != nil {
		return false, err
	}
	if q.Form != FormAsk {
		return false, fmt.Errorf("sparql: not an ASK query")
	}
	ev := newEvaluator(ctx, g, Options{})
	rows := ev.evalGroup(q.Where, []Binding{{}})
	if err := ev.cancel.cause(); err != nil {
		observeAbort(nil, err)
		return false, err
	}
	return len(rows) > 0, nil
}

// Construct parses and executes a CONSTRUCT query, returning the built graph.
func Construct(g *rdf.Graph, src string) (*rdf.Graph, error) {
	return ConstructCtx(context.Background(), g, src)
}

// ConstructCtx is Construct under a context (see ExecSelectCtx).
func ConstructCtx(ctx context.Context, g *rdf.Graph, src string) (*rdf.Graph, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: not a CONSTRUCT query")
	}
	ev := newEvaluator(ctx, g, Options{})
	rows := ev.evalGroup(q.Where, []Binding{{}})
	if err := ev.cancel.cause(); err != nil {
		observeAbort(nil, err)
		return nil, err
	}
	out := rdf.NewGraph()
	for _, row := range rows {
		for _, tp := range q.Template {
			s, okS := instantiate(tp.S, row)
			p, okP := instantiate(tp.P, row)
			o, okO := instantiate(tp.O, row)
			if !okS || !okP || !okO {
				continue
			}
			if s.IsLiteral() || p.Kind != rdf.KindIRI {
				continue
			}
			out.Add(rdf.Triple{S: s, P: p, O: o})
		}
	}
	return out, nil
}

// Describe parses and executes a DESCRIBE query: the result graph holds
// every triple whose subject is a described resource, with one level of
// blank-node closure (a simple concise bounded description).
func Describe(g *rdf.Graph, src string) (*rdf.Graph, error) {
	return DescribeCtx(context.Background(), g, src)
}

// DescribeCtx is Describe under a context (see ExecSelectCtx).
func DescribeCtx(ctx context.Context, g *rdf.Graph, src string) (*rdf.Graph, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Form != FormDescribe {
		return nil, fmt.Errorf("sparql: not a DESCRIBE query")
	}
	ev := newEvaluator(ctx, g, Options{})
	resources := map[rdf.Term]struct{}{}
	var rows []Binding
	if len(q.Where.Elems) > 0 {
		rows = ev.evalGroup(q.Where, []Binding{{}})
		if err := ev.cancel.cause(); err != nil {
			return nil, err
		}
	} else {
		rows = []Binding{{}}
	}
	for _, n := range q.Describe {
		if !n.IsVar() {
			resources[n.Term] = struct{}{}
			continue
		}
		for _, b := range rows {
			if t, ok := b[n.Var]; ok && t.IsResource() {
				resources[t] = struct{}{}
			}
		}
	}
	out := rdf.NewGraph()
	for res := range resources {
		err := g.MatchCtx(ctx, res, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
			out.Add(t)
			if t.O.IsBlank() {
				g.Match(t.O, rdf.Any, rdf.Any, func(t2 rdf.Triple) bool {
					out.Add(t2)
					return true
				})
			}
			return true
		})
		if err != nil {
			observeAbort(nil, err)
			return nil, err
		}
	}
	return out, nil
}

func instantiate(n Node, b Binding) (rdf.Term, bool) {
	if !n.IsVar() {
		return n.Term, true
	}
	t, ok := b[n.Var]
	return t, ok
}

// ExecSelect executes a parsed SELECT query.
func ExecSelect(g *rdf.Graph, q *Query) (*Results, error) {
	return ExecSelectOpts(g, q, Options{})
}

func (ev *evaluator) execSelect(q *Query, input []Binding) (*Results, error) {
	// Projection pushdown: count every textual variable reference of this
	// query so materialize can skip run-local variables (saved/restored
	// because subqueries re-enter here with their own scope).
	savedUses, savedStar := ev.varUses, ev.varStar
	ev.varUses, ev.varStar = countVarUses(q)
	defer func() { ev.varUses, ev.varStar = savedUses, savedStar }()
	t0 := time.Now()
	ms := ev.enterSpan("match")
	pm, pmt := ev.profEnter("match", "")
	rows := ev.evalGroup(q.Where, input)
	ev.profExit(pm, pmt, len(input), len(rows))
	ms.SetAttr("rows", len(rows))
	ev.exitSpan(ms)
	observeSince(phaseMatch, t0)
	if err := ev.cancel.cause(); err != nil {
		return nil, err
	}
	grouped := len(q.GroupBy) > 0 || selectHasAggregate(q) || len(q.Having) > 0
	// The modifier pipeline follows SPARQL 1.1 §18.2.4: the solution
	// sequence is first extended with the SELECT-expression values (grouping
	// and aggregation produce one extended solution per group), then ORDER BY
	// sorts the *pre-projection* solutions — so a sort key does not have to
	// be projected — and only then the projection drops variables, DISTINCT
	// dedupes projected rows, and OFFSET/LIMIT slice.
	work := rows
	order := q.OrderBy
	var err error
	t1 := time.Now()
	if grouped {
		as := ev.enterSpan("aggregate")
		as.SetAttr("groupBy", len(q.GroupBy))
		pa, pat := ev.profEnter("aggregate", "")
		work, order, err = ev.aggregate(q, rows)
		ev.profExit(pa, pat, len(rows), len(work))
		ev.exitSpan(as)
		observeSince(phaseAggregate, t1)
	} else {
		ps := ev.enterSpan("project")
		pe, pet := ev.profEnter("extend", "")
		work = ev.extend(q, rows)
		ev.profExit(pe, pet, len(rows), len(work))
		ev.exitSpan(ps)
		observeSince(phaseProject, t1)
	}
	if err != nil {
		return nil, err
	}
	if err := ev.cancel.cause(); err != nil {
		return nil, err
	}
	t2 := time.Now()
	mods := ev.enterSpan("modifiers")
	pmod, pmodt := ev.profEnter("modifiers", "")
	if len(order) > 0 {
		ev.orderBy(work, order)
	}
	res := ev.project(q, work)
	if q.Select.Distinct {
		res = distinct(res)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	ev.profExit(pmod, pmodt, len(work), len(res.Rows))
	mods.SetAttr("rows", len(res.Rows))
	ev.exitSpan(mods)
	observeSince(phaseModifiers, t2)
	return res, nil
}

func selectHasAggregate(q *Query) bool {
	for _, it := range q.Select.Items {
		if it.Expr != nil && HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// evalGroup evaluates a group graph pattern over input bindings, returning
// the joined solutions. Per SPARQL group scoping, filters logically apply
// after the other elements of the group; as an optimization a filter is
// *pushed down* — applied as soon as every variable it mentions is surely
// bound — which prunes intermediate results early. Filters using BOUND or
// EXISTS always wait until group end (their truth can change while the
// group is still being built).
func (ev *evaluator) evalGroup(gp *GroupPattern, input []Binding) []Binding {
	cur := input
	type pendingFilter struct {
		expr Expr
		vars map[string]bool
		// deferToEnd forces evaluation after the whole group.
		deferToEnd bool
		applied    bool
	}
	var filters []*pendingFilter
	// Reorder consecutive triple patterns for join selectivity (ablation #3
	// in DESIGN.md), leaving every other element in place. Under the
	// cost-based planners this greedy pass only fixes the placement of
	// property-path triples; plain-triple runs are re-ordered by the
	// join-order search inside runTriples.
	elems := ev.reorderTriples(gp.Elems)
	// Variables surely bound so far (input bindings may bind more per-row,
	// but only guarantees matter here).
	bound := map[string]bool{}
	// costBased switches BGP runs to the cost-based planner: runs span
	// intervening filters (the planner places them inside the run), and
	// estBound tracks estimation-only bindings — variables bound via
	// VALUES/BIND/input rows that the sure-bound set cannot claim but the
	// cardinality math should credit.
	costBased := ev.planner != PlannerGreedy && !ev.noReorder
	var estBound map[string]bool
	if costBased {
		estBound = map[string]bool{}
		if len(input) > 0 {
			for v := range input[0] {
				estBound[v] = true
			}
		}
		if !ev.noPushdown {
			// Pre-register the group's filters so a run can pick up a filter
			// that textually follows it; group scoping makes filters apply to
			// the whole group regardless of position, and the sure-bound gate
			// plus deferToEnd keep pushdown semantics unchanged.
			for _, e := range gp.Elems {
				if e.Filter != nil {
					f := &pendingFilter{expr: e.Filter, vars: map[string]bool{}}
					collectExprVars(e.Filter, f.vars)
					f.deferToEnd = usesBoundOrExists(e.Filter)
					filters = append(filters, f)
				}
			}
		}
	}
	env := exprEnv{ev: ev}
	applyFilter := func(f *pendingFilter) {
		fs := ev.cur.StartChild("filter")
		if fs != nil {
			fs.SetAttr("expr", fmt.Sprint(f.expr))
			fs.SetAttr("rows_in", len(cur))
		}
		flabel := ""
		if ev.prof != nil {
			flabel = f.expr.String()
		}
		pf, pft := ev.profEnter("filter", flabel)
		rowsIn := len(cur)
		var out []Binding
		for i, b := range cur {
			if i%pollEvery == 0 && ev.cancel.poll() {
				break
			}
			if v, err := env.evalBool(f.expr, b); err == nil && v {
				out = append(out, b)
			}
		}
		cur = out
		f.applied = true
		ev.profExit(pf, pft, rowsIn, len(cur))
		if fs != nil {
			fs.SetAttr("rows_out", len(cur))
			fs.Finish()
		}
	}
	filterReady := func() bool {
		if ev.noPushdown {
			return false
		}
		for _, f := range filters {
			if f.applied || f.deferToEnd {
				continue
			}
			ready := true
			for v := range f.vars {
				if !bound[v] {
					ready = false
					break
				}
			}
			if ready {
				return true
			}
		}
		return false
	}
	applyReady := func() {
		if ev.noPushdown {
			return
		}
		for _, f := range filters {
			if f.applied || f.deferToEnd {
				continue
			}
			ready := true
			for v := range f.vars {
				if !bound[v] {
					ready = false
					break
				}
			}
			if ready {
				applyFilter(f)
			}
		}
	}
	for i := 0; i < len(elems); i++ {
		if ev.cancel.poll() {
			return nil
		}
		elem := elems[i]
		switch {
		case elem.Triple != nil && elem.Triple.Path != nil:
			cur = ev.evalPathTriple(elem.Triple, cur)
			for _, v := range elem.Triple.Vars() {
				bound[v] = true
				if estBound != nil {
					estBound[v] = true
				}
			}
		case elem.Triple != nil && costBased:
			// Gather the maximal run of plain triple patterns, spanning
			// intervening filters (pre-registered above): the cost-based
			// planner re-orders the whole run and places each pushed-down
			// filter right after the step that binds its last variable, so
			// filters prune inside the ID-space pipeline instead of breaking
			// the run.
			run := []*TriplePattern{elem.Triple}
			for i+1 < len(elems) {
				nx := elems[i+1]
				if nx.Triple != nil && nx.Triple.Path == nil {
					run = append(run, nx.Triple)
					i++
					continue
				}
				if nx.Filter != nil && !ev.noPushdown {
					i++ // pre-registered; placed inside the run below
					continue
				}
				break
			}
			preSure := cloneVarSet(bound)
			preEst := cloneVarSet(estBound)
			for _, tp := range run {
				for _, v := range tp.Vars() {
					bound[v] = true
					estBound[v] = true
				}
			}
			var pushed []*runFilter
			if !ev.noPushdown {
				for _, f := range filters {
					if f.applied || f.deferToEnd {
						continue
					}
					ready := true
					for v := range f.vars {
						if !bound[v] {
							ready = false
							break
						}
					}
					if ready {
						f.applied = true
						pushed = append(pushed, &runFilter{expr: f.expr, vars: f.vars})
					}
				}
			}
			cur = ev.evalTripleRun(run, pushed, preSure, preEst, cur)
		case elem.Triple != nil:
			// Legacy greedy path: fuse the maximal run of consecutive plain
			// triple patterns into one ID-space pipeline — intermediate rows
			// stay as ID slices. The run breaks where a pushed-down filter
			// becomes applicable, so filter pushdown still prunes between
			// patterns.
			run := []*TriplePattern{elem.Triple}
			for _, v := range elem.Triple.Vars() {
				bound[v] = true
			}
			for i+1 < len(elems) && elems[i+1].Triple != nil &&
				elems[i+1].Triple.Path == nil && !filterReady() {
				tp := elems[i+1].Triple
				run = append(run, tp)
				for _, v := range tp.Vars() {
					bound[v] = true
				}
				i++
			}
			cur = ev.evalTripleRun(run, nil, nil, nil, cur)
		case elem.Filter != nil:
			if costBased && !ev.noPushdown {
				break // pre-registered before the walk
			}
			f := &pendingFilter{expr: elem.Filter, vars: map[string]bool{}}
			collectExprVars(elem.Filter, f.vars)
			f.deferToEnd = usesBoundOrExists(elem.Filter)
			filters = append(filters, f)
		case elem.Optional != nil:
			cur = ev.evalOptional(elem.Optional, cur)
			// OPTIONAL binds nothing surely.
		case elem.Union != nil:
			cur = ev.evalUnion(elem.Union, cur)
			for v := range surelyBoundInUnion(elem.Union) {
				bound[v] = true
				if estBound != nil {
					estBound[v] = true
				}
			}
		case elem.Group != nil:
			cur = ev.evalGroup(elem.Group, cur)
			for v := range surelyBound(elem.Group) {
				bound[v] = true
				if estBound != nil {
					estBound[v] = true
				}
			}
		case elem.Bind != nil:
			cur = ev.evalBind(elem.Bind, cur)
			// BIND may leave the var unbound on expression error, so it binds
			// nothing surely — but for cardinality estimation the variable
			// arrives bound in (almost) every row.
			if estBound != nil {
				estBound[elem.Bind.Var] = true
			}
		case elem.Values != nil:
			cur = ev.evalValues(elem.Values, cur)
			// A VALUES column with no UNDEF binds its variable in every row;
			// columns with UNDEF rows bind nothing surely but still inform
			// cardinality estimation.
			for j, v := range elem.Values.Vars {
				sure := len(elem.Values.Rows) > 0
				for _, row := range elem.Values.Rows {
					if row[j].IsZero() {
						sure = false
						break
					}
				}
				if sure {
					bound[v] = true
				}
				if estBound != nil {
					estBound[v] = true
				}
			}
		case elem.SubQuery != nil:
			cur = ev.evalSubQuery(elem.SubQuery, cur)
			// Projection may contain unbound results; be conservative.
		case elem.Minus != nil:
			cur = ev.evalMinus(elem.Minus, cur)
		}
		if len(cur) == 0 {
			return nil
		}
		// Operator-boundary governance: any element may have grown the
		// binding set past the budget (joins additionally check while
		// producing, see join.go).
		if ev.overBudget(len(cur)) {
			return nil
		}
		applyReady()
		if len(cur) == 0 {
			return nil
		}
	}
	for _, f := range filters {
		if ev.cancel.poll() {
			return nil
		}
		if !f.applied {
			applyFilter(f)
		}
	}
	return cur
}

// collectExprVars accumulates the variables an expression mentions.
func collectExprVars(e Expr, acc map[string]bool) {
	switch x := e.(type) {
	case ExprVar:
		acc[x.Name] = true
	case ExprUnary:
		collectExprVars(x.Sub, acc)
	case ExprBinary:
		collectExprVars(x.Left, acc)
		collectExprVars(x.Right, acc)
	case ExprCall:
		for _, a := range x.Args {
			collectExprVars(a, acc)
		}
	case ExprIn:
		collectExprVars(x.Left, acc)
		for _, a := range x.List {
			collectExprVars(a, acc)
		}
	case ExprAggregate:
		if x.Arg != nil {
			collectExprVars(x.Arg, acc)
		}
	}
}

// usesBoundOrExists reports whether the expression's value could change as
// more of the group is evaluated even with its variables bound.
func usesBoundOrExists(e Expr) bool {
	switch x := e.(type) {
	case ExprExists:
		return true
	case ExprCall:
		if x.Func == "BOUND" || x.Func == "COALESCE" {
			return true
		}
		for _, a := range x.Args {
			if usesBoundOrExists(a) {
				return true
			}
		}
	case ExprUnary:
		return usesBoundOrExists(x.Sub)
	case ExprBinary:
		return usesBoundOrExists(x.Left) || usesBoundOrExists(x.Right)
	case ExprIn:
		if usesBoundOrExists(x.Left) {
			return true
		}
		for _, a := range x.List {
			if usesBoundOrExists(a) {
				return true
			}
		}
	}
	return false
}

// surelyBound returns the variables a group pattern always binds.
func surelyBound(gp *GroupPattern) map[string]bool {
	out := map[string]bool{}
	for _, e := range gp.Elems {
		switch {
		case e.Triple != nil:
			for _, v := range e.Triple.Vars() {
				out[v] = true
			}
		case e.Group != nil:
			for v := range surelyBound(e.Group) {
				out[v] = true
			}
		case e.Union != nil:
			for v := range surelyBoundInUnion(e.Union) {
				out[v] = true
			}
		}
	}
	return out
}

// surelyBoundInUnion returns the intersection of the branches' sure
// bindings.
func surelyBoundInUnion(u *UnionPattern) map[string]bool {
	if len(u.Alternatives) == 0 {
		return nil
	}
	out := surelyBound(u.Alternatives[0])
	for _, alt := range u.Alternatives[1:] {
		b := surelyBound(alt)
		for v := range out {
			if !b[v] {
				delete(out, v)
			}
		}
	}
	return out
}

// reorderTriples greedily orders maximal runs of triple patterns by
// estimated cardinality, preferring patterns connected to already-bound
// variables. Non-triple elements act as barriers — but the bindings they
// introduce (VALUES columns, BIND aliases, sure bindings of nested groups
// and unions, and the variables of earlier runs) seed the next run's
// estimation, so a pattern joined only through a VALUES/BIND variable no
// longer costs as fully unbound.
func (ev *evaluator) reorderTriples(elems []PatternElem) []PatternElem {
	if ev.noReorder {
		return elems
	}
	out := make([]PatternElem, 0, len(elems))
	pre := map[string]bool{}
	i := 0
	for i < len(elems) {
		if elems[i].Triple == nil {
			switch e := elems[i]; {
			case e.Values != nil:
				for _, v := range e.Values.Vars {
					pre[v] = true
				}
			case e.Bind != nil:
				pre[e.Bind.Var] = true
			case e.Group != nil:
				for v := range surelyBound(e.Group) {
					pre[v] = true
				}
			case e.Union != nil:
				for v := range surelyBoundInUnion(e.Union) {
					pre[v] = true
				}
			}
			out = append(out, elems[i])
			i++
			continue
		}
		j := i
		for j < len(elems) && elems[j].Triple != nil {
			j++
		}
		run := make([]*TriplePattern, 0, j-i)
		for _, e := range elems[i:j] {
			run = append(run, e.Triple)
		}
		for _, tp := range ev.orderRun(run, pre) {
			out = append(out, PatternElem{Triple: tp})
		}
		for _, tp := range run {
			for _, v := range tp.Vars() {
				pre[v] = true
			}
		}
		i = j
	}
	return out
}

// orderRun is the legacy greedy orderer: cheapest-estimate-first with a
// connectivity preference. pre seeds the bound set with variables flowing in
// from elements before the run.
func (ev *evaluator) orderRun(run []*TriplePattern, pre map[string]bool) []*TriplePattern {
	if len(run) <= 1 {
		return run
	}
	bound := cloneVarSet(pre)
	var ordered []*TriplePattern
	remaining := append([]*TriplePattern(nil), run...)
	for len(remaining) > 0 {
		bestIdx, bestScore := -1, 1<<62
		for idx, tp := range remaining {
			score := ev.estimate(tp, bound)
			// Prefer patterns sharing a variable with the bound set.
			connected := len(bound) == 0
			for _, v := range tp.Vars() {
				if bound[v] {
					connected = true
					break
				}
			}
			if !connected {
				score += 1 << 40
			}
			if score < bestScore {
				bestScore, bestIdx = score, idx
			}
		}
		tp := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		ordered = append(ordered, tp)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
	}
	return ordered
}

// estimate approximates the cardinality of a pattern assuming bound
// variables act as constants of unknown value. Counts come from the graph's
// version-invalidated cardinality cache, so repeated estimation (join
// reordering is O(k²) in pattern count, and interactive sessions re-plan
// the same patterns every click) never rescans an index.
func (ev *evaluator) estimate(tp *TriplePattern, bound map[string]bool) int {
	if tp.Path != nil {
		return 1 << 20 // paths are expensive; schedule late
	}
	ids, ok := ev.constIDs(tp)
	if !ok {
		return 0 // a constant term the graph has never seen: no matches
	}
	base := ev.g.CachedCountIDs(ids[0], ids[1], ids[2])
	// Each bound variable position cuts the estimate (heuristic factor 10).
	for _, n := range []Node{tp.S, tp.O} {
		if n.IsVar() && bound[n.Var] && base > 1 {
			base = base/10 + 1
		}
	}
	return base
}

// constIDs resolves the pattern's constant positions to dictionary IDs
// (0 where variable). ok is false when a constant is absent from the
// dictionary, meaning the pattern can never match.
func (ev *evaluator) constIDs(tp *TriplePattern) ([3]rdf.ID, bool) {
	var ids [3]rdf.ID
	for i, n := range [3]Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			continue
		}
		id, known := ev.g.TermID(n.Term)
		if !known {
			return ids, false
		}
		ids[i] = id
	}
	return ids, true
}

// evalTriple joins the input bindings with a single pattern's matches. The
// work happens in dictionary-ID space (see join.go): a strategy is chosen
// per pattern — per-row index lookups for selective patterns, build/probe
// hash join for unselective ones — and large inputs are partitioned across
// the worker pool with an order-preserving merge. Consecutive patterns are
// normally fused into one run by evalGroup so intermediate rows never
// materialize Binding maps.
func (ev *evaluator) evalTriple(tp *TriplePattern, input []Binding) []Binding {
	if tp.Path != nil {
		return ev.evalPathTriple(tp, input)
	}
	return ev.evalTripleRun([]*TriplePattern{tp}, nil, nil, nil, input)
}

// substNode maps a pattern node to a match term given current bindings,
// returning the variable name still to bind ("" when the position is fixed).
func substNode(n Node, b Binding) (rdf.Term, string) {
	if !n.IsVar() {
		return n.Term, ""
	}
	if t, ok := b[n.Var]; ok {
		return t, ""
	}
	return rdf.Any, n.Var
}

func (ev *evaluator) evalOptional(opt *GroupPattern, input []Binding) []Binding {
	s := ev.enterSpan("optional")
	s.SetAttr("rows_in", len(input))
	po, pot := ev.profEnter("optional", "")
	var out []Binding
	for _, b := range input {
		if ev.cancel.aborted() {
			break
		}
		ext := ev.evalGroup(opt, []Binding{b})
		if len(ext) == 0 {
			out = append(out, b)
			continue
		}
		out = append(out, ext...)
	}
	ev.profExit(po, pot, len(input), len(out))
	s.SetAttr("rows_out", len(out))
	ev.exitSpan(s)
	return out
}

func (ev *evaluator) evalUnion(u *UnionPattern, input []Binding) []Binding {
	s := ev.enterSpan("union")
	s.SetAttr("alternatives", len(u.Alternatives))
	pu, put := ev.profEnter("union", "")
	var out []Binding
	for _, alt := range u.Alternatives {
		out = append(out, ev.evalGroup(alt, input)...)
	}
	ev.profExit(pu, put, len(input), len(out))
	s.SetAttr("rows_out", len(out))
	ev.exitSpan(s)
	return out
}

func (ev *evaluator) evalBind(be *BindElem, input []Binding) []Binding {
	env := exprEnv{ev: ev}
	out := make([]Binding, 0, len(input))
	for _, b := range input {
		nb := b.clone()
		if v, err := env.evalExpr(be.Expr, b); err == nil {
			nb[be.Var] = v
		}
		out = append(out, nb)
	}
	return out
}

func (ev *evaluator) evalValues(ve *ValuesElem, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		for _, row := range ve.Rows {
			nb := b.clone()
			ok := true
			for i, v := range ve.Vars {
				t := row[i]
				if t.IsZero() {
					continue // UNDEF
				}
				if cur, bound := nb[v]; bound {
					if cur != t {
						ok = false
						break
					}
					continue
				}
				nb[v] = t
			}
			if ok {
				out = append(out, nb)
			}
		}
	}
	return out
}

func (ev *evaluator) evalSubQuery(q *Query, input []Binding) []Binding {
	s := ev.enterSpan("subquery")
	defer ev.exitSpan(s)
	ps, pst := ev.profEnter("subquery", "")
	res, err := ev.execSelect(q, []Binding{{}})
	if err != nil {
		ev.profExit(ps, pst, len(input), 0)
		return nil
	}
	var out []Binding
	for _, b := range input {
		if ev.cancel.aborted() {
			break
		}
		for _, sub := range res.Rows {
			if !b.compatible(sub) {
				continue
			}
			nb := b.clone()
			for _, v := range res.Vars {
				if t, ok := sub[v]; ok {
					nb[v] = t
				}
			}
			out = append(out, nb)
		}
	}
	ev.profExit(ps, pst, len(input), len(out))
	return out
}

func (ev *evaluator) evalMinus(m *GroupPattern, input []Binding) []Binding {
	s := ev.enterSpan("minus")
	defer ev.exitSpan(s)
	pm, pmt := ev.profEnter("minus", "")
	removed := ev.evalGroup(m, []Binding{{}})
	var out []Binding
	for i, b := range input {
		if i%pollEvery == 0 && ev.cancel.poll() {
			break
		}
		excluded := false
		for _, r := range removed {
			shared := false
			agree := true
			for k, v := range r {
				if w, ok := b[k]; ok {
					shared = true
					if w != v {
						agree = false
						break
					}
				}
			}
			if shared && agree {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, b)
		}
	}
	ev.profExit(pm, pmt, len(input), len(out))
	return out
}

// extend returns the solution rows extended with the SELECT-expression
// values bound to their aliases (the algebra's Extend, SPARQL 1.1
// §18.2.4.4), so ORDER BY can see them before projection. The input is
// returned untouched when the projection has no expressions. Expressions
// evaluate against the already-extended row, so a later select expression
// may reference an earlier alias. An expression error leaves the alias
// unbound, per the spec's error semantics.
func (ev *evaluator) extend(q *Query, rows []Binding) []Binding {
	hasExpr := false
	for _, it := range q.Select.Items {
		if it.Expr != nil {
			hasExpr = true
			break
		}
	}
	if q.Select.Star || !hasExpr {
		return rows
	}
	env := exprEnv{ev: ev}
	out := make([]Binding, len(rows))
	for i, b := range rows {
		nb := b.clone()
		for _, it := range q.Select.Items {
			if it.Expr == nil {
				continue
			}
			if v, err := env.evalExpr(it.Expr, nb); err == nil {
				nb[it.Var] = v
			}
		}
		out[i] = nb
	}
	return out
}

// project builds the final result table from the (extended, ordered)
// solution rows, keeping only the projected variables.
func (ev *evaluator) project(q *Query, rows []Binding) *Results {
	if q.Select.Star {
		varSet := map[string]bool{}
		var vars []string
		for _, b := range rows {
			for v := range b {
				if !varSet[v] && !strings.HasPrefix(v, "_anon") {
					varSet[v] = true
					vars = append(vars, v)
				}
			}
		}
		sort.Strings(vars)
		out := &Results{Vars: vars}
		for _, b := range rows {
			nb := Binding{}
			for _, v := range vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
			out.Rows = append(out.Rows, nb)
		}
		return out
	}
	out := &Results{}
	for _, it := range q.Select.Items {
		out.Vars = append(out.Vars, it.Var)
	}
	for _, b := range rows {
		nb := Binding{}
		for _, it := range q.Select.Items {
			if t, ok := b[it.Var]; ok {
				nb[it.Var] = t
			}
		}
		out.Rows = append(out.Rows, nb)
	}
	return out
}

func distinct(res *Results) *Results {
	seen := map[string]bool{}
	out := &Results{Vars: res.Vars}
	for _, b := range res.Rows {
		var sb strings.Builder
		for _, v := range res.Vars {
			if t, ok := b[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('\x00')
		}
		key := sb.String()
		if !seen[key] {
			seen[key] = true
			out.Rows = append(out.Rows, b)
		}
	}
	return out
}

// orderBy stably sorts solution rows by the ORDER BY conditions. It runs on
// the pre-projection solution sequence (see execSelect), so conditions may
// reference variables the projection drops.
func (ev *evaluator) orderBy(rows []Binding, conds []OrderCond) {
	cmp := ev.orderComparator(conds)
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
}

// orderComparator returns the three-way comparator ORDER BY sorts with. The
// comparator is a strict weak order: equivalent-but-unequal terms (distinct
// lexical forms of one value) compare 0 in *both* directions — the earlier
// boolean formulation returned true both ways under DESC, which corrupts
// sort.SliceStable. Unbound/erroring expressions sort lowest ascending, per
// SPARQL 1.1 §15.1.
func (ev *evaluator) orderComparator(conds []OrderCond) func(a, b Binding) int {
	env := exprEnv{ev: ev}
	return func(a, b Binding) int {
		for _, c := range conds {
			va, errA := env.evalExpr(c.Expr, a)
			vb, errB := env.evalExpr(c.Expr, b)
			var cmp int
			switch {
			case errA != nil && errB != nil:
				cmp = 0
			case errA != nil:
				cmp = -1
			case errB != nil:
				cmp = 1
			case va == vb:
				cmp = 0
			case va.Less(vb):
				cmp = -1
			case vb.Less(va):
				cmp = 1
			}
			if cmp == 0 {
				continue
			}
			if c.Desc {
				return -cmp
			}
			return cmp
		}
		return 0
	}
}

// OrderComparator exposes the ORDER BY comparator over solution bindings
// for property-based testing (internal/conformance asserts it is a strict
// weak order: irreflexive, antisymmetric, transitive). It never mutates the
// graph and ignores resource limits.
func OrderComparator(g *rdf.Graph, conds []OrderCond) func(a, b Binding) int {
	ev := newEvaluator(context.Background(), g, Options{})
	return ev.orderComparator(conds)
}
