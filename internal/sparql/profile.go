package sparql

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"rdfanalytics/internal/obs"
)

// Operator-level runtime profiling (EXPLAIN ANALYZE). A Profile is an
// operator tree recorded while a query executes: per operator it aggregates
// wall time, rows in/out, invocation count, and — for index scans — the
// planner's cardinality estimate next to the actual output, summarized as
// the q-error max(est/act, act/est). Repeated invocations of the same
// operator at the same site (e.g. a per-binding OPTIONAL body, or the scans
// of a correlated subquery) fold into one node keyed by (op, label), so the
// tree stays bounded regardless of data size.
//
// Profiling follows the tracer's nil-safety convention: a nil *Profile (and
// the nil *ProfNode it hands out) is a valid no-op, so every instrumentation
// site costs one pointer test when profiling is off — proven by
// BenchmarkProfileOverhead and TestProfileDifferential.

// qerrorBuckets are the bucket bounds of rdfa_planner_qerror: a q-error of
// 1 is a perfect estimate, so the ladder starts there and grows
// geometrically to catch order-of-magnitude misestimates.
var qerrorBuckets = []float64{1, 1.5, 2, 4, 8, 16, 64, 256, 1024}

// The q-error family is registered eagerly so /metrics exposes it (with
// zero observations) before the first profiled query runs.
var plannerQError = obs.Default.Histogram("rdfa_planner_qerror", qerrorBuckets)

// Profile is the root handle of one query's operator profile. The zero
// value is not usable; call NewProfile. All methods are nil-safe.
type Profile struct {
	root *ProfNode
}

// NewProfile returns a profile whose root node carries the given name (the
// query kind, e.g. "sparql" or "run_analytics").
func NewProfile(name string) *Profile {
	return &Profile{root: &ProfNode{Op: name, EstRows: -1}}
}

// Root returns the root node, or nil for a nil profile — the evaluator
// stores this pointer and pays one nil test per instrumentation site.
func (p *Profile) Root() *ProfNode {
	if p == nil {
		return nil
	}
	return p.root
}

// Sub returns a profile rooted at the (op, label) child of p's root, so a
// pipeline stage (e.g. the HIFUN exec stage) can hand the evaluator a
// nested subtree. Nil-safe: a nil receiver yields a nil profile.
func (p *Profile) Sub(op, label string) *Profile {
	if p == nil {
		return nil
	}
	return &Profile{root: p.root.child(op, label)}
}

// SetTraceID links the profile's root node to an obs trace, so exported
// profiles carry the ID of the span tree recorded alongside them. Empty
// IDs and already-linked profiles are left untouched (a sub-profile's
// caller may have linked the shared root first).
func (p *Profile) SetTraceID(id string) {
	if p == nil || p.root == nil || id == "" || p.root.TraceID != "" {
		return
	}
	p.root.TraceID = id
}

// TraceID returns the linked trace ID ("" when unlinked or nil).
func (p *Profile) TraceID() string {
	if p == nil || p.root == nil {
		return ""
	}
	return p.root.TraceID
}

// ProfNode is one operator of the profile tree. Fields accumulate across
// invocations of the operator at this site. Nodes are written only by the
// evaluation's orchestration goroutine (worker partitions never touch the
// profile) and read after the query finishes, so no locking is needed.
type ProfNode struct {
	// Op is the operator kind: scan, bgp, filter, optional, union, minus,
	// subquery, path_scan, match, aggregate, extend, modifiers, translate...
	Op string
	// Label distinguishes operator sites of the same kind, e.g. the triple
	// pattern of a scan or the expression of a filter.
	Label string
	// Calls counts invocations folded into this node.
	Calls int
	// RowsIn / RowsOut total the rows entering and leaving the operator.
	RowsIn, RowsOut int64
	// EstRows totals the planner's estimated output cardinality across
	// calls; -1 means the operator carries no estimate (only index scans
	// do — their estimate is the PR 1 cardinality-stats-cache count).
	EstRows int64
	// Strategy is the join strategy an index scan chose (last call wins).
	Strategy string
	// FbSeeded marks a scan whose cardinality estimate came from the
	// planner's execution-feedback store rather than the cold stats cache.
	FbSeeded bool
	// FbCtx is the scan's bound-variable context under the executed plan —
	// the feedback store keys observed actuals by (label, context) so an
	// actual never seeds the same pattern at a different join position.
	// Empty for scans executed outside a cost-based plan.
	FbCtx string
	// Replans counts mid-query re-optimizations under a BGP node.
	Replans int
	// Dur totals wall time across calls.
	Dur time.Duration
	// TraceID links the profile to the obs trace of the execution that
	// produced it (set on the root node only, by Profile.SetTraceID).
	TraceID string

	children []*ProfNode
	index    map[string]*ProfNode
}

// child returns (creating on first use) the child node for (op, label).
func (n *ProfNode) child(op, label string) *ProfNode {
	if n == nil {
		return nil
	}
	key := op + "\x00" + label
	if c, ok := n.index[key]; ok {
		return c
	}
	c := &ProfNode{Op: op, Label: label, EstRows: -1}
	if n.index == nil {
		n.index = map[string]*ProfNode{}
	}
	n.index[key] = c
	n.children = append(n.children, c)
	return c
}

// record folds one finished invocation into the node.
func (n *ProfNode) record(d time.Duration, rowsIn, rowsOut int) {
	if n == nil {
		return
	}
	n.Calls++
	n.Dur += d
	n.RowsIn += int64(rowsIn)
	n.RowsOut += int64(rowsOut)
}

// addEst accumulates a planner cardinality estimate for this operator.
func (n *ProfNode) addEst(est int) {
	if n == nil {
		return
	}
	if n.EstRows < 0 {
		n.EstRows = 0
	}
	n.EstRows += int64(est)
}

// setStrategy records the chosen join strategy.
func (n *ProfNode) setStrategy(s string) {
	if n != nil {
		n.Strategy = s
	}
}

// setFeedback marks the scan's estimate as feedback-seeded.
func (n *ProfNode) setFeedback() {
	if n != nil {
		n.FbSeeded = true
	}
}

// setFbCtx records the scan's bound-variable context (last call wins).
func (n *ProfNode) setFbCtx(ctx string) {
	if n != nil && ctx != "" {
		n.FbCtx = ctx
	}
}

// addReplans accumulates mid-query re-optimizations of a BGP run.
func (n *ProfNode) addReplans(k int) {
	if n != nil {
		n.Replans += k
	}
}

// QError returns the node's q-error max(est/act, act/est) — the standard
// symmetric misestimation factor — with both sides clamped to >= 1 so empty
// results don't divide by zero. Returns 0 when the node has no estimate.
func (n *ProfNode) QError() float64 {
	if n == nil || n.EstRows < 0 {
		return 0
	}
	return QError(n.EstRows, n.RowsOut)
}

// QError computes max(est/act, act/est) with both sides clamped to >= 1.
func QError(est, act int64) float64 {
	e, a := float64(max64(est, 1)), float64(max64(act, 1))
	if e > a {
		return e / a
	}
	return a / e
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// profEnter descends into (creating if needed) the current node's child for
// (op, label) and makes it current. It returns the previous current node
// and the start time for profExit. When profiling is off it returns nil and
// does nothing — one pointer test, mirroring enterSpan.
func (ev *evaluator) profEnter(op, label string) (*ProfNode, time.Time) {
	if ev.prof == nil {
		return nil, time.Time{}
	}
	parent := ev.prof
	ev.prof = parent.child(op, label)
	return parent, time.Now()
}

// profExit folds the finished invocation into the node opened by profEnter
// and pops back to its parent.
func (ev *evaluator) profExit(parent *ProfNode, start time.Time, rowsIn, rowsOut int) {
	if parent == nil {
		return
	}
	ev.prof.record(time.Since(start), rowsIn, rowsOut)
	ev.prof = parent
}

// Record folds one finished invocation into the profile's root node. It is
// how pipeline stages outside the evaluator (the HIFUN translate and
// build_answer stages, the session's end-to-end run) report their timings
// into a profile subtree obtained via Sub. Nil-safe.
func (p *Profile) Record(d time.Duration, rowsIn, rowsOut int) {
	if p == nil {
		return
	}
	p.root.record(d, rowsIn, rowsOut)
}

// Tree renders the profile as an indented text tree, one operator per line
// with calls, rows in/out, wall time, and — on scan nodes — the planner
// estimate, actual cardinality and q-error. This is the EXPLAIN ANALYZE
// output of sparqlrun -explain-analyze and the rdfa-cli profile command.
func (p *Profile) Tree() string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	p.root.writeTree(&sb, 0)
	return sb.String()
}

func (n *ProfNode) writeTree(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Op)
	if n.Label != "" {
		sb.WriteString(" " + n.Label)
	}
	fmt.Fprintf(sb, "  calls=%d rows=%d→%d", n.Calls, n.RowsIn, n.RowsOut)
	if n.EstRows >= 0 {
		fmt.Fprintf(sb, " est=%d act=%d q-err=%.2f", n.EstRows, n.RowsOut, n.QError())
	}
	if n.FbSeeded {
		sb.WriteString(" [feedback]")
	}
	if n.Replans > 0 {
		fmt.Fprintf(sb, " replans=%d", n.Replans)
	}
	if n.Strategy != "" {
		fmt.Fprintf(sb, " [%s]", n.Strategy)
	}
	sb.WriteString("  " + fmtProfDur(n.Dur) + "\n")
	for _, c := range n.children {
		c.writeTree(sb, depth+1)
	}
}

// fmtProfDur renders a duration at display precision.
func fmtProfDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// ProfNodeJSON is the wire form of a profile node (GET /api/trace).
type ProfNodeJSON struct {
	Op         string         `json:"op"`
	TraceID    string         `json:"trace_id,omitempty"`
	Label      string         `json:"label,omitempty"`
	Calls      int            `json:"calls"`
	RowsIn     int64          `json:"rows_in"`
	RowsOut    int64          `json:"rows_out"`
	EstRows    *int64         `json:"est_rows,omitempty"`
	QError     float64        `json:"q_error,omitempty"`
	Strategy   string         `json:"strategy,omitempty"`
	FbSeeded   bool           `json:"feedback_seeded,omitempty"`
	Replans    int            `json:"replans,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Children   []ProfNodeJSON `json:"children,omitempty"`
}

// Export returns the profile as a JSON-marshalable tree, or nil for a nil
// profile.
func (p *Profile) Export() *ProfNodeJSON {
	if p == nil {
		return nil
	}
	out := p.root.export()
	return &out
}

func (n *ProfNode) export() ProfNodeJSON {
	out := ProfNodeJSON{
		Op:         n.Op,
		TraceID:    n.TraceID,
		Label:      n.Label,
		Calls:      n.Calls,
		RowsIn:     n.RowsIn,
		RowsOut:    n.RowsOut,
		Strategy:   n.Strategy,
		FbSeeded:   n.FbSeeded,
		Replans:    n.Replans,
		DurationMS: float64(n.Dur.Microseconds()) / 1000,
	}
	if n.EstRows >= 0 {
		est := n.EstRows
		out.EstRows = &est
		out.QError = n.QError()
	}
	for _, c := range n.children {
		out.Children = append(out.Children, c.export())
	}
	return out
}

// MarshalJSON renders the profile as its exported node tree.
func (p *Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.Export())
}

// EstimateStat summarizes one profiled operator that carried a planner
// estimate — the rows of the dashboard's plan-vs-actual misestimation table.
type EstimateStat struct {
	Op     string  `json:"op"`
	Label  string  `json:"label"`
	Est    int64   `json:"est"`
	Actual int64   `json:"actual"`
	QError float64 `json:"q_error"`
	// Feedback marks an estimate seeded from the planner's feedback store.
	Feedback bool `json:"feedback,omitempty"`
	// Ctx is the scan's bound-variable context, the second half of its
	// feedback site key (empty for scans outside a cost-based plan, which
	// the feedback store never records).
	Ctx string `json:"ctx,omitempty"`
	// ActualIn is the input binding count the operator consumed — with
	// Actual it gives the feedback store the site's observed per-input-row
	// selectivity.
	ActualIn int64 `json:"actual_in,omitempty"`
}

// Estimates collects every estimate-carrying operator of the profile,
// worst q-error first.
func (p *Profile) Estimates() []EstimateStat {
	if p == nil {
		return nil
	}
	var out []EstimateStat
	p.root.collectEstimates(&out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].QError > out[j].QError })
	return out
}

func (n *ProfNode) collectEstimates(acc *[]EstimateStat) {
	if n.EstRows >= 0 {
		*acc = append(*acc, EstimateStat{
			Op: n.Op, Label: n.Label, Est: n.EstRows, Actual: n.RowsOut,
			QError: n.QError(), Feedback: n.FbSeeded, Ctx: n.FbCtx,
			ActualIn: n.RowsIn,
		})
	}
	for _, c := range n.children {
		c.collectEstimates(acc)
	}
}

// MaxQError returns the worst q-error across the profile's operators, or 0
// when no operator carried an estimate.
func (p *Profile) MaxQError() float64 {
	if p == nil {
		return 0
	}
	worst := 0.0
	var walk func(n *ProfNode)
	walk = func(n *ProfNode) {
		if q := n.QError(); q > worst {
			worst = q
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.root)
	return worst
}

// emitMetrics publishes the finished profile into the Prometheus registry:
// one rdfa_planner_qerror observation per estimate-carrying operator, and
// per-operator row/time totals. Called once per profiled query, off the
// evaluation hot path.
func (p *Profile) emitMetrics() {
	if p == nil {
		return
	}
	var walk func(n *ProfNode)
	walk = func(n *ProfNode) {
		if n.Calls > 0 {
			obs.Default.Counter("rdfa_sparql_operator_rows_total", "op", n.Op).Add(uint64(n.RowsOut))
			obs.Default.Histogram("rdfa_sparql_operator_seconds", nil, "op", n.Op).Observe(n.Dur.Seconds())
		}
		if n.EstRows >= 0 {
			plannerQError.Observe(n.QError())
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.root)
}
