// Package sparql implements a SPARQL 1.1 query engine over rdf.Graph:
// lexer, recursive-descent parser, expression evaluator and a query
// evaluator supporting basic graph patterns, FILTER, OPTIONAL, UNION, BIND,
// VALUES, subqueries, property paths, GROUP BY with the standard aggregate
// functions, HAVING, ORDER BY, DISTINCT, LIMIT/OFFSET, and the SELECT /
// CONSTRUCT / ASK query forms.
//
// It is the endpoint substrate of the RDF-Analytics reproduction: every
// query emitted by the HIFUN→SPARQL translator (internal/hifun) and by the
// faceted-search intention compiler (internal/facet) is executable here.
package sparql

import (
	"fmt"
	"strings"

	"rdfanalytics/internal/rdf"
)

// QueryForm discriminates the supported query forms.
type QueryForm int

const (
	// FormSelect is a SELECT query.
	FormSelect QueryForm = iota
	// FormAsk is an ASK query.
	FormAsk
	// FormConstruct is a CONSTRUCT query.
	FormConstruct
	// FormDescribe is a DESCRIBE query.
	FormDescribe
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Prefixes map[string]string
	Select   SelectClause
	// Template holds the CONSTRUCT template patterns (Form == FormConstruct).
	Template []TriplePattern
	// Describe holds the DESCRIBE targets (Form == FormDescribe): variables
	// resolved against WHERE solutions, or concrete IRIs.
	Describe []Node
	Where    *GroupPattern
	GroupBy  []GroupCond
	Having   []Expr
	OrderBy  []OrderCond
	Limit    int // -1 means unset
	Offset   int
}

// SelectClause is the projection of a SELECT query.
type SelectClause struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
}

// SelectItem is one projected column: a bare variable, or an expression
// (possibly an aggregate) with an output variable name.
type SelectItem struct {
	// Var is the output variable name (no '?'). For bare variables it is the
	// variable itself; for expressions without AS it is a generated name.
	Var string
	// Expr is nil for bare variables.
	Expr Expr
}

// GroupCond is one GROUP BY condition: a variable or an expression, with an
// optional binding name (GROUP BY (expr AS ?v)).
type GroupCond struct {
	Var  string // non-empty for plain variables or (expr AS ?var)
	Expr Expr   // nil for plain variables
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Desc bool
	Expr Expr
}

// GroupPattern is a group graph pattern: an ordered sequence of elements.
type GroupPattern struct {
	Elems []PatternElem
}

// PatternElem is one element of a group pattern. Exactly one field is set.
type PatternElem struct {
	Triple   *TriplePattern
	Filter   Expr
	Optional *GroupPattern
	Union    *UnionPattern
	Group    *GroupPattern // nested { ... }
	Bind     *BindElem
	Values   *ValuesElem
	SubQuery *Query
	Minus    *GroupPattern
}

// UnionPattern is a UNION of two or more alternatives.
type UnionPattern struct {
	Alternatives []*GroupPattern
}

// BindElem is BIND(expr AS ?var).
type BindElem struct {
	Expr Expr
	Var  string
}

// ValuesElem is an inline VALUES data block.
type ValuesElem struct {
	Vars []string
	Rows [][]rdf.Term // a zero Term means UNDEF
}

// NodeKind discriminates pattern node kinds.
type NodeKind int

const (
	// NodeVar is a variable pattern node.
	NodeVar NodeKind = iota
	// NodeTerm is a concrete RDF term pattern node.
	NodeTerm
)

// Node is a subject/predicate/object position in a triple pattern: a
// variable or a concrete term.
type Node struct {
	Kind NodeKind
	Var  string   // Kind == NodeVar
	Term rdf.Term // Kind == NodeTerm
}

// Var returns a variable node.
func Var(name string) Node { return Node{Kind: NodeVar, Var: name} }

// TermNode returns a concrete-term node.
func TermNode(t rdf.Term) Node { return Node{Kind: NodeTerm, Term: t} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Kind == NodeVar }

func (n Node) String() string {
	if n.Kind == NodeVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is a triple pattern whose predicate may be a property path.
type TriplePattern struct {
	S Node
	// P is the predicate when Path is nil.
	P Node
	// Path, when non-nil, is a non-trivial property path replacing P.
	Path Path
	O    Node
}

func (tp TriplePattern) String() string {
	pred := tp.P.String()
	if tp.Path != nil {
		pred = tp.Path.String()
	}
	return fmt.Sprintf("%s %s %s .", tp.S, pred, tp.O)
}

// Vars returns the variables of the pattern in S, P, O order.
func (tp TriplePattern) Vars() []string {
	var out []string
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			out = append(out, n.Var)
		}
	}
	return out
}

// Path is a SPARQL 1.1 property path.
type Path interface {
	fmt.Stringer
	isPath()
}

// PathIRI is an atomic path: a single predicate IRI.
type PathIRI struct{ IRI rdf.Term }

// PathInverse is ^path.
type PathInverse struct{ Sub Path }

// PathSeq is path1/path2.
type PathSeq struct{ Left, Right Path }

// PathAlt is path1|path2.
type PathAlt struct{ Left, Right Path }

// PathMod is path?, path* or path+.
type PathMod struct {
	Sub Path
	Min int // 0 or 1
	Max int // 1 or -1 (unbounded)
}

func (PathIRI) isPath()     {}
func (PathInverse) isPath() {}
func (PathSeq) isPath()     {}
func (PathAlt) isPath()     {}
func (PathMod) isPath()     {}

func (p PathIRI) String() string     { return p.IRI.String() }
func (p PathInverse) String() string { return "^" + p.Sub.String() }
func (p PathSeq) String() string     { return p.Left.String() + "/" + p.Right.String() }
func (p PathAlt) String() string     { return "(" + p.Left.String() + "|" + p.Right.String() + ")" }
func (p PathMod) String() string {
	switch {
	case p.Min == 0 && p.Max == 1:
		return p.Sub.String() + "?"
	case p.Min == 0:
		return p.Sub.String() + "*"
	default:
		return p.Sub.String() + "+"
	}
}

// Expr is a SPARQL expression. Aggregate expressions only appear in SELECT,
// HAVING and ORDER BY of grouped queries.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// ExprVar references a variable.
type ExprVar struct{ Name string }

// ExprTerm is a constant term.
type ExprTerm struct{ Term rdf.Term }

// ExprUnary is !x or -x or +x.
type ExprUnary struct {
	Op  string
	Sub Expr
}

// ExprBinary is a binary operation: || && = != < <= > >= + - * /.
type ExprBinary struct {
	Op          string
	Left, Right Expr
}

// ExprCall is a builtin or cast function call.
type ExprCall struct {
	Func string // upper-cased builtin name, or a datatype IRI for casts
	Args []Expr
}

// ExprAggregate is an aggregate application.
type ExprAggregate struct {
	Func      string // COUNT SUM AVG MIN MAX GROUP_CONCAT SAMPLE
	Distinct  bool
	Star      bool // COUNT(*)
	Arg       Expr
	Separator string // GROUP_CONCAT
}

// ExprExists is EXISTS{...} / NOT EXISTS{...}.
type ExprExists struct {
	Not     bool
	Pattern *GroupPattern
}

// ExprIn is ?x IN (a, b, c) / NOT IN.
type ExprIn struct {
	Not  bool
	Left Expr
	List []Expr
}

func (ExprVar) isExpr()       {}
func (ExprTerm) isExpr()      {}
func (ExprUnary) isExpr()     {}
func (ExprBinary) isExpr()    {}
func (ExprCall) isExpr()      {}
func (ExprAggregate) isExpr() {}
func (ExprExists) isExpr()    {}
func (ExprIn) isExpr()        {}

func (e ExprVar) String() string   { return "?" + e.Name }
func (e ExprTerm) String() string  { return e.Term.String() }
func (e ExprUnary) String() string { return e.Op + e.Sub.String() }
func (e ExprBinary) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}
func (e ExprCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	name := e.Func
	if strings.Contains(name, "://") {
		name = "<" + name + ">"
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}
func (e ExprAggregate) String() string {
	inner := ""
	if e.Star {
		inner = "*"
	} else if e.Arg != nil {
		inner = e.Arg.String()
	}
	if e.Distinct {
		inner = "DISTINCT " + inner
	}
	if e.Func == "GROUP_CONCAT" && e.Separator != "" {
		inner += `; SEPARATOR="` + e.Separator + `"`
	}
	return e.Func + "(" + inner + ")"
}
func (e ExprExists) String() string {
	if e.Not {
		return "NOT EXISTS {...}"
	}
	return "EXISTS {...}"
}
func (e ExprIn) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	op := " IN "
	if e.Not {
		op = " NOT IN "
	}
	return e.Left.String() + op + "(" + strings.Join(items, ", ") + ")"
}

// HasAggregate reports whether the expression tree contains an aggregate.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case ExprAggregate:
		return true
	case ExprUnary:
		return HasAggregate(x.Sub)
	case ExprBinary:
		return HasAggregate(x.Left) || HasAggregate(x.Right)
	case ExprCall:
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case ExprIn:
		if HasAggregate(x.Left) {
			return true
		}
		for _, a := range x.List {
			if HasAggregate(a) {
				return true
			}
		}
	}
	return false
}
