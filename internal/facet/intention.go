// Package facet implements the core model for Faceted Search over RDF of
// Tzitzikas et al. [114], the substrate the paper extends (Chapter 5): the
// state space of the interaction (states with an extension and an
// intention), the Restrict/Joins operators of §5.3.1, class-based and
// property-based transition markers with count information, path expansion
// per Eq. 5.1, and the two evaluation strategies of §5.5 — in-memory
// set-based (Table 5.1) and SPARQL-only (Table 5.2).
package facet

import (
	"fmt"
	"strings"

	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// PathStep is one property hop of a facet path; Inverse walks p⁻¹.
type PathStep struct {
	P       rdf.Term
	Inverse bool
}

func (s PathStep) String() string {
	if s.Inverse {
		return "^" + s.P.LocalName()
	}
	return s.P.LocalName()
}

// Path is a sequence of property hops from the focus entities.
type Path []PathStep

func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Cond is one conjunctive condition of an intention: the entities whose
// Path-value equals Value (or falls in Values / satisfies Op against Value)
// survive.
type Cond struct {
	Path Path
	// Value is the required value (exact match) when Op is empty or "=".
	Value rdf.Term
	// Values, when non-empty, means membership in the set.
	Values []rdf.Term
	// Op supports literal range filters: < <= > >= != (the paper's range
	// values button, Example 3 of §5.1).
	Op string
}

func (c Cond) String() string {
	if len(c.Values) > 0 {
		vals := make([]string, len(c.Values))
		for i, v := range c.Values {
			vals[i] = v.LocalName()
		}
		return fmt.Sprintf("%s ∈ {%s}", c.Path, strings.Join(vals, ", "))
	}
	op := c.Op
	if op == "" {
		op = "="
	}
	return fmt.Sprintf("%s %s %s", c.Path, op, c.Value.LocalName())
}

// Intention is the query of a state (ctx.Int): a class restriction plus a
// conjunction of path conditions. Its answer is the state's extension.
type Intention struct {
	// Class restricts the focus to instances of this class (zero = none).
	Class rdf.Term
	// Conds are conjunctive path conditions.
	Conds []Cond
	// Seed, when non-empty, pins the focus to an externally produced result
	// set (keyword-search hand-off, §5.4.1): a VALUES block in SPARQL.
	Seed []rdf.Term
	// Base and PivotStep, when set, mean this intention's entities were
	// reached by *switching the focus* along a property from the entities
	// of Base (the type-switching differentiator of §5.2.1): the answer is
	// { y | ∃x ∈ ans(Base) : (x, p, y) } (or the inverse direction).
	Base      *Intention
	PivotStep *PathStep
}

// Clone deep-copies the intention (Base is shared: intentions are
// immutable once a state is created).
func (in Intention) Clone() Intention {
	out := Intention{Class: in.Class, Base: in.Base, PivotStep: in.PivotStep}
	out.Conds = append(out.Conds, in.Conds...)
	out.Seed = append(out.Seed, in.Seed...)
	return out
}

// String renders the intention for display in the UI breadcrumb.
func (in Intention) String() string {
	var parts []string
	if in.Base != nil && in.PivotStep != nil {
		parts = append(parts, "("+in.Base.String()+") ⇒ "+in.PivotStep.String())
	}
	if !in.Class.IsZero() {
		parts = append(parts, "type="+in.Class.LocalName())
	}
	for _, c := range in.Conds {
		parts = append(parts, c.String())
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// ToSPARQL compiles the intention into a SELECT query returning the
// extension in variable ?x — the Table 5.2 encoding of the model's
// notations.
func (in Intention) ToSPARQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT DISTINCT ?x WHERE {\n")
	pats := in.Patterns("?x")
	if pats == "" {
		// Unrestricted: every subject.
		pats = "  ?x ?p_any ?o_any .\n"
	}
	sb.WriteString(pats)
	sb.WriteString("}")
	return sb.String()
}

// Patterns renders the intention's graph patterns rooted at the given
// variable (used both by ToSPARQL and as the ExtraPatterns hook of the
// HIFUN translator).
func (in Intention) Patterns(rootVar string) string {
	return in.patternsAt(rootVar, 0)
}

func (in Intention) patternsAt(rootVar string, depth int) string {
	var sb strings.Builder
	vc := 0
	freshVar := func() string {
		vc++
		return fmt.Sprintf("%s_i%d", rootVar, vc)
	}
	// Focus pivot: the root entities are reached from the base intention's
	// entities via one property hop.
	if in.Base != nil && in.PivotStep != nil {
		baseVar := fmt.Sprintf("%s_b%d", rootVar, depth+1)
		sb.WriteString(in.Base.patternsAt(baseVar, depth+1))
		if in.PivotStep.Inverse {
			fmt.Fprintf(&sb, "  %s <%s> %s .\n", rootVar, in.PivotStep.P.Value, baseVar)
		} else {
			fmt.Fprintf(&sb, "  %s <%s> %s .\n", baseVar, in.PivotStep.P.Value, rootVar)
		}
	}
	if len(in.Seed) > 0 {
		fmt.Fprintf(&sb, "  VALUES %s {", rootVar)
		for _, t := range in.Seed {
			sb.WriteByte(' ')
			sb.WriteString(sparqlLex(t))
		}
		sb.WriteString(" }\n")
	}
	if !in.Class.IsZero() {
		fmt.Fprintf(&sb, "  %s <%s> <%s> .\n", rootVar, rdf.RDFType, in.Class.Value)
	}
	for _, c := range in.Conds {
		cur := rootVar
		for i, step := range c.Path {
			last := i == len(c.Path)-1
			var next string
			if last && len(c.Values) == 0 && (c.Op == "" || c.Op == "=") && c.Value.Kind == rdf.KindIRI {
				// Fixed URI end: inline the value.
				next = "<" + c.Value.Value + ">"
			} else {
				next = freshVar()
			}
			if step.Inverse {
				fmt.Fprintf(&sb, "  %s <%s> %s .\n", next, step.P.Value, cur)
			} else {
				fmt.Fprintf(&sb, "  %s <%s> %s .\n", cur, step.P.Value, next)
			}
			if last && strings.HasPrefix(next, "?") {
				// Value condition on the path end.
				switch {
				case len(c.Values) > 0:
					vals := make([]string, len(c.Values))
					for j, v := range c.Values {
						vals[j] = sparqlLex(v)
					}
					fmt.Fprintf(&sb, "  FILTER(%s IN (%s))\n", next, strings.Join(vals, ", "))
				case c.Op != "" && c.Op != "=":
					fmt.Fprintf(&sb, "  FILTER(%s %s %s)\n", next, c.Op, sparqlLex(c.Value))
				default:
					fmt.Fprintf(&sb, "  FILTER(%s = %s)\n", next, sparqlLex(c.Value))
				}
			}
			cur = next
		}
	}
	return sb.String()
}

func sparqlLex(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindIRI:
		return "<" + t.Value + ">"
	case rdf.KindBlank:
		return "_:" + t.Value
	default:
		if t.Datatype == rdf.XSDInteger || t.Datatype == rdf.XSDDecimal || t.Datatype == rdf.XSDBoolean {
			return t.Value
		}
		s := "\"" + strings.ReplaceAll(t.Value, `"`, `\"`) + "\""
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != rdf.XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// Answer evaluates the intention against g via the SPARQL engine (the
// "SPARQL-only" strategy of Table 5.2).
func (in Intention) Answer(g *rdf.Graph) ([]rdf.Term, error) {
	res, err := sparql.Select(g, in.ToSPARQL())
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Term, 0, res.Len())
	for _, row := range res.Rows {
		out = append(out, row["x"])
	}
	return out, nil
}
