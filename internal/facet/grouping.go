package facet

import (
	"sort"

	"rdfanalytics/internal/rdf"
)

// ValueGroup is one class-grouped block of a facet's values (Fig 5.4 d):
// the values of the facet that are instances of Class, with the summed
// count. Values with no class land in a group with the zero Class.
type ValueGroup struct {
	Class  rdf.Term
	Count  int
	Values []ValueCount
}

// GroupedValues organizes the transition markers of a property facet by the
// classes of the values, as in Fig 5.4 (d): "by hardDrive (3) — SSD (2):
// SSD1, SSD2; NVMe (1): NVMe1". Each value is filed under its most specific
// class (minimal w.r.t. the subclass order); multi-typed values pick the
// term-order-smallest minimal class for determinism.
func (m *Model) GroupedValues(s *State, p rdf.Term, inverse bool) []ValueGroup {
	joins := m.Joins(s.Ext, p, inverse)
	byClass := map[rdf.Term][]ValueCount{}
	for v, count := range joins {
		cls := m.specificClass(v)
		byClass[cls] = append(byClass[cls], ValueCount{Value: v, Count: count})
	}
	out := make([]ValueGroup, 0, len(byClass))
	for cls, vals := range byClass {
		sortValueCounts(vals)
		total := 0
		for _, vc := range vals {
			total += vc.Count
		}
		out = append(out, ValueGroup{Class: cls, Count: total, Values: vals})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Class.Less(out[j].Class)
	})
	return out
}

// specificClass returns the most specific class of v, or the zero Term.
func (m *Model) specificClass(v rdf.Term) rdf.Term {
	if !v.IsResource() {
		return rdf.Term{}
	}
	var types []rdf.Term
	m.G.Match(v, rdf.NewIRI(rdf.RDFType), rdf.Any, func(t rdf.Triple) bool {
		if _, isClass := m.Schema.Classes[t.O]; isClass {
			types = append(types, t.O)
		}
		return true
	})
	if len(types) == 0 {
		return rdf.Term{}
	}
	// Minimal types: those with no other held type below them.
	var minimal []rdf.Term
	for _, c := range types {
		isMin := true
		for _, d := range types {
			if d == c {
				continue
			}
			if _, below := m.Schema.SuperClasses[d][c]; below {
				// d is a subclass of c, so c is not minimal.
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c)
		}
	}
	sort.Slice(minimal, func(i, j int) bool { return minimal[i].Less(minimal[j]) })
	return minimal[0]
}
