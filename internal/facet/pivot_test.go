package facet

import (
	"testing"

	"rdfanalytics/internal/rdf"
)

// TestSwitchFocus: from DELL laptops, pivot to their manufacturers — the
// focus becomes companies with company facets.
func TestSwitchFocus(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	s = m.SwitchFocus(s, PathStep{P: pe("manufacturer")})
	if s.Ext.Len() != 2 { // DELL, Lenovo
		t.Fatalf("companies = %v", s.Ext.Items())
	}
	if !s.Ext.Has(pe("DELL")) || !s.Ext.Has(pe("Lenovo")) {
		t.Fatalf("ext = %v", s.Ext.Items())
	}
	// Company facets are now available.
	facets := m.PropertyFacets(s, false)
	var hasOrigin bool
	for _, f := range facets {
		if f.P == pe("origin") {
			hasOrigin = true
		}
	}
	if !hasOrigin {
		t.Error("origin facet missing after pivot")
	}
	// Further restriction works on the new focus.
	s2 := m.ClickValue(s, Path{{P: pe("origin")}}, pe("USA"))
	if s2.Ext.Len() != 1 || !s2.Ext.Has(pe("DELL")) {
		t.Fatalf("restricted ext = %v", s2.Ext.Items())
	}
}

// TestSwitchFocusInverse pivots against the property direction: from
// companies to the products they manufacture.
func TestSwitchFocusInverse(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Company"))
	s = m.ClickValue(s, Path{{P: pe("origin")}}, pe("USA"))
	// US companies: DELL, AVDElectronics.
	if s.Ext.Len() != 2 {
		t.Fatalf("US companies = %v", s.Ext.Items())
	}
	s = m.SwitchFocus(s, PathStep{P: pe("manufacturer"), Inverse: true})
	// Products by US companies: laptop1, laptop2 (DELL) + SSD2 (AVD).
	if s.Ext.Len() != 3 {
		t.Fatalf("products = %v", s.Ext.Items())
	}
}

// TestSwitchFocusIntentionAgreement: the pivoted intention's SPARQL answer
// equals the set-computed extension, including after further clicks.
func TestSwitchFocusIntentionAgreement(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	s = m.ClickValue(s, Path{{P: pe("USBPorts")}}, rdf.NewInteger(2))
	s = m.SwitchFocus(s, PathStep{P: pe("manufacturer")})
	s = m.ClickValue(s, Path{{P: pe("origin")}}, pe("USA"))
	ans, err := s.Int.Answer(m.G)
	if err != nil {
		t.Fatalf("%v\n%s", err, s.Int.ToSPARQL())
	}
	got := NewTermSet(ans...)
	if got.Len() != s.Ext.Len() {
		t.Fatalf("SPARQL %d vs sets %d\n%s\nintention: %s",
			got.Len(), s.Ext.Len(), s.Int.ToSPARQL(), s.Int)
	}
	for _, e := range s.Ext.Items() {
		if !got.Has(e) {
			t.Errorf("%v missing from SPARQL answer", e)
		}
	}
}

// TestDoublePivot chains two focus switches: laptops → hard drives → their
// manufacturers.
func TestDoublePivot(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	s = m.SwitchFocus(s, PathStep{P: pe("hardDrive")})
	if s.Ext.Len() != 3 {
		t.Fatalf("drives = %v", s.Ext.Items())
	}
	s = m.SwitchFocus(s, PathStep{P: pe("manufacturer")})
	if s.Ext.Len() != 2 { // Maxtor, AVDElectronics
		t.Fatalf("drive makers = %v", s.Ext.Items())
	}
	// Intention chain also evaluates correctly.
	ans, err := s.Int.Answer(m.G)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("intention answer = %v\n%s", ans, s.Int.ToSPARQL())
	}
	if s.Int.String() == "⊤" {
		t.Error("pivot not reflected in breadcrumb")
	}
}
