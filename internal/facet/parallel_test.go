package facet

import (
	"reflect"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestPropertyFacetsParallelEquivalence checks the determinism contract of
// the parallel transition-marker counting: PropertyFacets must return the
// same facets, values and counts in the same order at every parallelism
// level.
func TestPropertyFacetsParallelEquivalence(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 150, Companies: 10, Seed: 7, Materialize: true})
	for _, includeInverse := range []bool{false, true} {
		seq := NewModel(g)
		seq.Parallelism = 1
		parM := NewModel(g)
		parM.Parallelism = 8

		sSeq := seq.Start()
		sPar := parM.Start()
		want := seq.PropertyFacets(sSeq, includeInverse)
		got := parM.PropertyFacets(sPar, includeInverse)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("includeInverse=%v: parallel facets differ from sequential\nseq: %d facets\npar: %d facets",
				includeInverse, len(want), len(got))
		}
		if len(want) == 0 {
			t.Fatalf("includeInverse=%v: no facets computed", includeInverse)
		}
	}
}

// TestJoinsIDSpaceMatchesNaive cross-checks the ID-space Joins against a
// direct term-space recount over Match.
func TestJoinsIDSpaceMatchesNaive(t *testing.T) {
	m := model(t)
	s := m.Start()
	for _, p := range m.applicableProperties() {
		for _, inverse := range []bool{false, true} {
			got := m.Joins(s.Ext, p, inverse)
			want := naiveJoins(m, s.Ext, p, inverse)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("Joins(%v, inverse=%v) = %v, want %v", p, inverse, got, want)
			}
		}
	}
	// A predicate the graph has never seen joins with nothing.
	if got := m.Joins(s.Ext, rdf.NewIRI("http://nowhere/p"), false); len(got) != 0 {
		t.Errorf("unknown predicate joined %d values", len(got))
	}
}

func naiveJoins(m *Model, e *TermSet, p rdf.Term, inverse bool) map[rdf.Term]int {
	out := map[rdf.Term]int{}
	m.G.Match(rdf.Any, p, rdf.Any, func(t rdf.Triple) bool {
		if inverse {
			if e.Has(t.O) {
				out[t.S]++
			}
		} else if e.Has(t.S) {
			out[t.O]++
		}
		return true
	})
	return out
}
