package facet

import (
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

func TestNumericBuckets(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 200, Companies: 8, Seed: 5, Materialize: true})
	m := NewModel(g)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	buckets := m.NumericBuckets(s, pe("price"), 4)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	total := 0
	for i, b := range buckets {
		if b.Hi < b.Lo {
			t.Errorf("bucket %d inverted: %+v", i, b)
		}
		if i > 0 && b.Lo != buckets[i-1].Hi {
			t.Errorf("bucket %d not contiguous", i)
		}
		total += b.Count
	}
	// Every laptop has exactly one price: counts sum to the extension size.
	if total != s.Ext.Len() {
		t.Errorf("bucket counts sum to %d, extension is %d", total, s.Ext.Len())
	}
}

func TestNumericBucketsDegenerate(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:v 5 . ex:b ex:v 5 .
`)
	m := NewModel(g)
	s := m.Start()
	if b := m.NumericBuckets(s, rdf.NewIRI("http://e/v"), 3); b != nil {
		t.Errorf("single distinct value must yield nil, got %v", b)
	}
	// Non-numeric property.
	if b := m.NumericBuckets(s, rdf.NewIRI(rdf.RDFType), 3); b != nil {
		t.Errorf("non-numeric property must yield nil, got %v", b)
	}
}

func TestClickBucketMatchesCount(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 150, Companies: 8, Seed: 9, Materialize: true})
	m := NewModel(g)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	buckets := m.NumericBuckets(s, pe("price"), 5)
	for i, b := range buckets {
		last := i == len(buckets)-1
		s2 := m.ClickBucket(s, pe("price"), b, last)
		if s2.Ext.Len() != b.Count {
			t.Errorf("bucket %d: click gives %d, count says %d", i, s2.Ext.Len(), b.Count)
		}
	}
}

func TestDateBuckets(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	years := m.DateBuckets(s, pe("releaseDate"))
	if len(years) != 1 {
		t.Fatalf("years = %v", years)
	}
	if years[0].Value != rdf.NewInteger(2021) || years[0].Count != 3 {
		t.Errorf("year bucket = %+v", years[0])
	}
	// Multi-year data.
	g := datagen.Products(datagen.ProductsConfig{Laptops: 200, Companies: 8, Seed: 2, Materialize: true})
	m2 := NewModel(g)
	s2 := m2.ClickClass(m2.Start(), pe("Laptop"))
	years = m2.DateBuckets(s2, pe("releaseDate"))
	if len(years) != 5 { // 2019..2023
		t.Fatalf("years = %v", years)
	}
	total := 0
	prev := int64(0)
	for _, y := range years {
		n, _ := y.Value.Int()
		if n <= prev {
			t.Error("years unsorted")
		}
		prev = n
		total += y.Count
	}
	if total != s2.Ext.Len() {
		t.Errorf("year counts sum to %d, extension %d", total, s2.Ext.Len())
	}
}
