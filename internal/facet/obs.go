package facet

import (
	"time"

	"rdfanalytics/internal/obs"
)

// Metric handles for facet computation, resolved once at package init. The
// three timed operations are the ones the state-space renderer calls on
// every interaction step: the class facet, the property facets of the
// current extension, and path expansion.
var (
	classFacetSeconds = obs.Default.Histogram("rdfa_facet_compute_seconds", nil, "op", "class_facet")
	propFacetsSeconds = obs.Default.Histogram("rdfa_facet_compute_seconds", nil, "op", "property_facets")
	expandPathSeconds = obs.Default.Histogram("rdfa_facet_compute_seconds", nil, "op", "expand_path")
)

// observeSince records an operation duration on h.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
