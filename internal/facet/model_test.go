package facet

import (
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

func model(t testing.TB) *Model {
	t.Helper()
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	return NewModel(g)
}

func pe(l string) rdf.Term { return rdf.NewIRI(datagen.ExampleNS + l) }

func findClass(nodes []ClassNode, c rdf.Term) *ClassNode {
	for i := range nodes {
		if nodes[i].Class == c {
			return &nodes[i]
		}
		if n := findClass(nodes[i].Children, c); n != nil {
			return n
		}
	}
	return nil
}

// TestFig54ClassFacet reproduces Fig 5.4 (a)-(b): the top-level classes with
// their counts, and the expanded hierarchy.
func TestFig54ClassFacet(t *testing.T) {
	m := model(t)
	s := m.Start()
	nodes := m.ClassFacet(s)
	// Fig 5.4 (a): Company (4), Location (5), Person (3), Product (6).
	want := map[string]int{"Company": 4, "Location": 5, "Person": 3, "Product": 6}
	if len(nodes) != len(want) {
		names := make([]string, len(nodes))
		for i, n := range nodes {
			names[i] = n.Class.LocalName()
		}
		t.Fatalf("top classes = %v, want %v", names, want)
	}
	for _, n := range nodes {
		if w, ok := want[n.Class.LocalName()]; !ok || n.Count != w {
			t.Errorf("class %s count = %d, want %d", n.Class.LocalName(), n.Count, want[n.Class.LocalName()])
		}
	}
	// Fig 5.4 (b): expansion — Location > {Continent (2), Country (3)},
	// Product > {HDType (3) > {NVMe (1), SSD (2)}, Laptop (3)}.
	sub := map[string]int{
		"Continent": 2, "Country": 3, "HDType": 3, "NVMe": 1, "SSD": 2, "Laptop": 3,
	}
	for name, w := range sub {
		n := findClass(nodes, pe(name))
		if n == nil {
			t.Errorf("class %s missing from hierarchy", name)
			continue
		}
		if n.Count != w {
			t.Errorf("class %s count = %d, want %d", name, n.Count, w)
		}
	}
	// SSD must be *under* HDType, not top-level.
	hdType := findClass(nodes, pe("HDType"))
	if hdType == nil || findClass(hdType.Children, pe("SSD")) == nil {
		t.Error("SSD not nested under HDType")
	}
}

// TestFig54PropertyFacets reproduces Fig 5.4 (c): after clicking class
// Laptop, the property facets show manufacturer DELL (2) / Lenovo (1), three
// release dates (1 each), USB ports 2 (2) / 4 (1), three hard drives.
func TestFig54PropertyFacets(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	if s.Ext.Len() != 3 {
		t.Fatalf("laptops = %d", s.Ext.Len())
	}
	facets := m.PropertyFacets(s, false)
	byName := map[string]Facet{}
	for _, f := range facets {
		byName[f.P.LocalName()] = f
	}
	man := byName["manufacturer"]
	if len(man.Values) != 2 {
		t.Fatalf("manufacturer values: %v", man.Values)
	}
	if man.Values[0].Value != pe("DELL") || man.Values[0].Count != 2 {
		t.Errorf("top manufacturer = %v (%d), want DELL (2)", man.Values[0].Value, man.Values[0].Count)
	}
	if man.Values[1].Value != pe("Lenovo") || man.Values[1].Count != 1 {
		t.Errorf("second manufacturer = %v (%d)", man.Values[1].Value, man.Values[1].Count)
	}
	usb := byName["USBPorts"]
	if len(usb.Values) != 2 || usb.Values[0].Count != 2 {
		t.Errorf("USBPorts: %v", usb.Values)
	}
	rd := byName["releaseDate"]
	if len(rd.Values) != 3 {
		t.Errorf("releaseDate: %v", rd.Values)
	}
	hd := byName["hardDrive"]
	if len(hd.Values) != 3 {
		t.Errorf("hardDrive: %v", hd.Values)
	}
	// No facet for properties inapplicable to laptops (e.g. GDPPerCapita).
	if _, ok := byName["GDPPerCapita"]; ok {
		t.Error("inapplicable property listed as facet")
	}
}

// TestFig55PathExpansion reproduces Fig 5.5 (b): expanding
// manufacturer/origin from the Laptop state gives US (1), China (1);
// expanding hardDrive/manufacturer gives Maxtor (2), AVDElectronics (1); one
// more hop to origin gives Singapore (1), US (1).
func TestFig55PathExpansion(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	vals := m.ExpandPath(s, Path{{P: pe("manufacturer")}, {P: pe("origin")}})
	asMap := func(vcs []ValueCount) map[string]int {
		out := map[string]int{}
		for _, vc := range vcs {
			out[vc.Value.LocalName()] = vc.Count
		}
		return out
	}
	got := asMap(vals)
	if got["USA"] != 1 || got["China"] != 1 {
		t.Errorf("manufacturer/origin = %v", got)
	}
	got = asMap(m.ExpandPath(s, Path{{P: pe("hardDrive")}, {P: pe("manufacturer")}}))
	if got["Maxtor"] != 2 || got["AVDElectronics"] != 1 {
		t.Errorf("hardDrive/manufacturer = %v", got)
	}
	got = asMap(m.ExpandPath(s, Path{{P: pe("hardDrive")}, {P: pe("manufacturer")}, {P: pe("origin")}}))
	if got["Singapore"] != 1 || got["USA"] != 1 {
		t.Errorf("hardDrive/manufacturer/origin = %v", got)
	}
	// Non-successive sequence yields nil.
	if m.ExpandPath(s, Path{{P: pe("origin")}}) != nil {
		t.Error("laptops have no origin; expansion must be nil")
	}
}

// TestClickValueEq51 checks the backward restriction of Eq. 5.1: selecting
// Asia at the end of hardDrive/manufacturer/origin/locatedAt keeps only
// laptops whose hard-drive maker is in Asia.
func TestClickValueEq51(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	path := Path{{P: pe("hardDrive")}, {P: pe("manufacturer")}, {P: pe("origin")}, {P: pe("locatedAt")}}
	s2 := m.ClickValue(s, path, pe("Asia"))
	// Maxtor (Singapore/Asia) makes SSD1 (laptop1) and NVMe1 (laptop3);
	// AVDElectronics is US. So laptops 1 and 3 survive.
	if s2.Ext.Len() != 2 {
		t.Fatalf("extension = %v", s2.Ext.Items())
	}
	if !s2.Ext.Has(pe("laptop1")) || !s2.Ext.Has(pe("laptop3")) {
		t.Errorf("extension = %v", s2.Ext.Items())
	}
	// The intention records the condition.
	if len(s2.Int.Conds) != 1 || s2.Int.Conds[0].Value != pe("Asia") {
		t.Errorf("intention = %s", s2.Int)
	}
}

func TestClickValueSimple(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	s2 := m.ClickValue(s, Path{{P: pe("manufacturer")}}, pe("DELL"))
	if s2.Ext.Len() != 2 {
		t.Fatalf("DELL laptops = %d", s2.Ext.Len())
	}
	// Further restriction: USB = 4 leaves laptop2.
	s3 := m.ClickValue(s2, Path{{P: pe("USBPorts")}}, rdf.NewInteger(4))
	if s3.Ext.Len() != 1 || !s3.Ext.Has(pe("laptop2")) {
		t.Fatalf("ext = %v", s3.Ext.Items())
	}
}

func TestClickValueSet(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	s2 := m.ClickValueSet(s, Path{{P: pe("manufacturer")}}, []rdf.Term{pe("DELL"), pe("Lenovo")})
	if s2.Ext.Len() != 3 {
		t.Fatalf("ext = %d", s2.Ext.Len())
	}
}

func TestClickRange(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	// USBPorts >= 2 keeps all three; > 2 keeps laptop2 only.
	s2 := m.ClickRange(s, Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	if s2.Ext.Len() != 3 {
		t.Fatalf(">=2: %v", s2.Ext.Items())
	}
	s3 := m.ClickRange(s, Path{{P: pe("USBPorts")}}, ">", rdf.NewInteger(2))
	if s3.Ext.Len() != 1 || !s3.Ext.Has(pe("laptop2")) {
		t.Fatalf(">2: %v", s3.Ext.Items())
	}
	// Date ranges (Example 1: laptops made in 2021).
	s4 := m.ClickRange(s, Path{{P: pe("releaseDate")}}, ">=", rdf.NewTyped("2021-01-01", rdf.XSDDate))
	if s4.Ext.Len() != 3 {
		t.Fatalf("date range: %v", s4.Ext.Items())
	}
	s5 := m.ClickRange(s, Path{{P: pe("releaseDate")}}, ">", rdf.NewTyped("2021-09-30", rdf.XSDDate))
	if s5.Ext.Len() != 1 || !s5.Ext.Has(pe("laptop3")) {
		t.Fatalf("date range: %v", s5.Ext.Items())
	}
}

func TestClickRangeOverPath(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	// GDP of manufacturer's origin > 50000: USA (70000) qualifies, China no.
	path := Path{{P: pe("manufacturer")}, {P: pe("origin")}, {P: pe("GDPPerCapita")}}
	s2 := m.ClickRange(s, path, ">", rdf.NewInteger(50000))
	if s2.Ext.Len() != 2 { // DELL laptops
		t.Fatalf("ext = %v", s2.Ext.Items())
	}
}

func TestInverseFacets(t *testing.T) {
	m := model(t)
	// Companies viewed through inverse manufacturer: who makes products.
	s := m.ClickClass(m.Start(), pe("Company"))
	facets := m.PropertyFacets(s, true)
	var inv *Facet
	for i := range facets {
		if facets[i].Inverse && facets[i].P == pe("manufacturer") {
			inv = &facets[i]
		}
	}
	if inv == nil {
		t.Fatal("inverse manufacturer facet missing")
	}
	// Values are products; count per product is 1 (each has one maker).
	if len(inv.Values) != 6 {
		t.Fatalf("inverse values = %v", inv.Values)
	}
	// Click a product restricts companies to its maker.
	s2 := m.ClickValue(s, Path{{P: pe("manufacturer"), Inverse: true}}, pe("laptop3"))
	if s2.Ext.Len() != 1 || !s2.Ext.Has(pe("Lenovo")) {
		t.Fatalf("ext = %v", s2.Ext.Items())
	}
}

// TestNoEmptyResults is the query-guidance invariant: every displayed
// transition marker leads to a non-empty extension.
func TestNoEmptyResults(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	for _, f := range m.PropertyFacets(s, true) {
		for _, vc := range f.Values {
			s2 := m.ClickValue(s, Path{{P: f.P, Inverse: f.Inverse}}, vc.Value)
			if s2.Ext.Len() == 0 {
				t.Errorf("marker %s=%s leads to empty extension", f.P.LocalName(), vc.Value.LocalName())
			}
			if s2.Ext.Len() != vc.Count {
				t.Errorf("marker %s=%s count %d != resulting extension %d",
					f.P.LocalName(), vc.Value.LocalName(), vc.Count, s2.Ext.Len())
			}
		}
	}
}

// TestIntentionExtensionAgreement: for every state reached by clicks, the
// intention evaluated via SPARQL (Table 5.2) returns exactly the extension
// computed set-wise (Table 5.1) — the E10 ablation's correctness basis.
func TestIntentionExtensionAgreement(t *testing.T) {
	m := model(t)
	states := []*State{
		m.ClickClass(m.Start(), pe("Laptop")),
	}
	s := states[0]
	s = m.ClickValue(s, Path{{P: pe("manufacturer")}}, pe("DELL"))
	states = append(states, s)
	s = m.ClickRange(s, Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	states = append(states, s)
	s2 := m.ClickValue(m.ClickClass(m.Start(), pe("Laptop")),
		Path{{P: pe("hardDrive")}, {P: pe("manufacturer")}, {P: pe("origin")}, {P: pe("locatedAt")}},
		pe("Asia"))
	states = append(states, s2)
	for i, st := range states {
		ans, err := st.Int.Answer(m.G)
		if err != nil {
			t.Fatalf("state %d: %v\n%s", i, err, st.Int.ToSPARQL())
		}
		got := NewTermSet(ans...)
		if got.Len() != st.Ext.Len() {
			t.Errorf("state %d (%s): SPARQL gives %d, sets give %d\n%s",
				i, st.Int, got.Len(), st.Ext.Len(), st.Int.ToSPARQL())
			continue
		}
		for _, e := range st.Ext.Items() {
			if !got.Has(e) {
				t.Errorf("state %d: %v missing from SPARQL answer", i, e)
			}
		}
	}
}

func TestStartFrom(t *testing.T) {
	m := model(t)
	s := m.StartFrom([]rdf.Term{pe("laptop1"), pe("laptop2")})
	if s.Ext.Len() != 2 {
		t.Fatalf("ext = %d", s.Ext.Len())
	}
	facets := m.PropertyFacets(s, false)
	for _, f := range facets {
		if f.P == pe("manufacturer") {
			if len(f.Values) != 1 || f.Values[0].Value != pe("DELL") {
				t.Errorf("manufacturer facet: %v", f.Values)
			}
		}
	}
}

func TestStartExcludesSchemaEntities(t *testing.T) {
	m := model(t)
	s := m.Start()
	if s.Ext.Has(pe("Laptop")) || s.Ext.Has(pe("manufacturer")) {
		t.Error("schema entities leaked into the initial extension")
	}
	if !s.Ext.Has(pe("laptop1")) || !s.Ext.Has(pe("DELL")) {
		t.Error("individuals missing from the initial extension")
	}
}

func TestTermSetBasics(t *testing.T) {
	s := NewTermSet(pe("a"), pe("b"), pe("a"))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	items := s.Items()
	if len(items) != 2 || items[1].Less(items[0]) {
		t.Fatalf("items unsorted: %v", items)
	}
	s.Add(pe("c"))
	if len(s.Items()) != 3 {
		t.Fatal("Items stale after Add")
	}
}

func TestMaxValuesCap(t *testing.T) {
	m := model(t)
	m.MaxValues = 1
	s := m.ClickClass(m.Start(), pe("Laptop"))
	for _, f := range m.PropertyFacets(s, false) {
		if len(f.Values) > 1 {
			t.Errorf("facet %s not capped: %d values", f.P.LocalName(), len(f.Values))
		}
	}
}

func TestRankFacets(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	facets := m.PropertyFacets(s, false)
	ranked := RankFacets(m, s.Ext, facets)
	if len(ranked) != len(facets) {
		t.Fatalf("ranked %d of %d", len(ranked), len(facets))
	}
	pos := map[string]int{}
	for i, f := range ranked {
		pos[f.P.LocalName()] = i
	}
	// releaseDate/price/hardDrive split 3 laptops into 3 singleton values
	// (entropy log2(3)≈1.58); manufacturer splits 2/1 (≈0.92); USBPorts 2/1.
	// So manufacturer must rank below the three full-split facets.
	if pos["manufacturer"] < pos["releaseDate"] {
		t.Errorf("ranking: %v", pos)
	}
	// A constant facet ranks last: add one.
	g := m.G
	for _, l := range []string{"laptop1", "laptop2", "laptop3"} {
		g.Add(rdf.Triple{S: pe(l), P: pe("kind"), O: rdf.NewString("laptop")})
	}
	m2 := NewModel(g)
	s2 := m2.ClickClass(m2.Start(), pe("Laptop"))
	ranked2 := RankFacets(m2, s2.Ext, m2.PropertyFacets(s2, false))
	if ranked2[len(ranked2)-1].P != pe("kind") {
		t.Errorf("constant facet not last: %v", ranked2[len(ranked2)-1].P)
	}
}

func BenchmarkPropertyFacets(b *testing.B) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 500, Companies: 10, Seed: 1, Materialize: true})
	m := NewModel(g)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	b.ResetTimer()
	for b.Loop() {
		m.PropertyFacets(s, false)
	}
}

// BenchmarkEvalStrategies is the E10 ablation: set-based vs SPARQL-only
// computation of a state's extension.
func BenchmarkEvalStrategies(b *testing.B) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 500, Companies: 10, Seed: 1, Materialize: true})
	m := NewModel(g)
	s0 := m.ClickClass(m.Start(), pe("Laptop"))
	path := Path{{P: pe("manufacturer")}, {P: pe("origin")}}
	vals := m.ExpandPath(s0, path)
	if len(vals) == 0 {
		b.Fatal("no expansion values")
	}
	target := vals[0].Value
	b.Run("sets", func(b *testing.B) {
		for b.Loop() {
			m.ClickValue(s0, path, target)
		}
	})
	b.Run("sparql", func(b *testing.B) {
		st := m.ClickValue(s0, path, target)
		for b.Loop() {
			if _, err := st.Int.Answer(m.G); err != nil {
				b.Fatal(err)
			}
		}
	})
}
