package facet

import (
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestFig54dGroupedValues reproduces Fig 5.4 (d): the hardDrive facet's
// values grouped by class — SSD (2): SSD1 (1), SSD2 (1); NVMe (1): NVMe1.
func TestFig54dGroupedValues(t *testing.T) {
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	groups := m.GroupedValues(s, pe("hardDrive"), false)
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Class != pe("SSD") || groups[0].Count != 2 {
		t.Errorf("first group = %v (%d), want SSD (2)", groups[0].Class, groups[0].Count)
	}
	if len(groups[0].Values) != 2 {
		t.Errorf("SSD values = %v", groups[0].Values)
	}
	if groups[1].Class != pe("NVMe") || groups[1].Count != 1 {
		t.Errorf("second group = %v (%d), want NVMe (1)", groups[1].Class, groups[1].Count)
	}
}

func TestGroupedValuesMostSpecificClass(t *testing.T) {
	// SSD1 is (after materialization) SSD, HDType and Product; it must be
	// filed under SSD, the most specific.
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	for _, g := range m.GroupedValues(s, pe("hardDrive"), false) {
		if g.Class == pe("HDType") || g.Class == pe("Product") {
			t.Errorf("value filed under non-specific class %v", g.Class)
		}
	}
}

func TestGroupedValuesLiterals(t *testing.T) {
	// Literal values (prices) have no class: one zero-class group.
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	groups := m.GroupedValues(s, pe("price"), false)
	if len(groups) != 1 || !groups[0].Class.IsZero() {
		t.Fatalf("groups = %+v", groups)
	}
	if len(groups[0].Values) != 3 {
		t.Errorf("values = %v", groups[0].Values)
	}
}

func TestGroupedValuesCountsMatchFacet(t *testing.T) {
	// The summed group counts equal the plain facet's value-count sum.
	m := model(t)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	joins := m.Joins(s.Ext, pe("manufacturer"), false)
	plain := 0
	for _, c := range joins {
		plain += c
	}
	grouped := 0
	for _, g := range m.GroupedValues(s, pe("manufacturer"), false) {
		grouped += g.Count
	}
	if plain != grouped {
		t.Errorf("counts diverge: %d vs %d", plain, grouped)
	}
	_ = datagen.ExampleNS
	_ = rdf.Term{}
}
