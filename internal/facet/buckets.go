package facet

import (
	"math"
	"sort"

	"rdfanalytics/internal/rdf"
)

// Bucket is one interval of a numeric facet: [Lo, Hi) except the last
// bucket, which is closed. Count is the number of extension members whose
// value falls inside.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Contains reports whether v falls in the bucket (last=true closes Hi).
func (b Bucket) Contains(v float64, last bool) bool {
	if last {
		return v >= b.Lo && v <= b.Hi
	}
	return v >= b.Lo && v < b.Hi
}

// NumericBuckets partitions the numeric values of facet p over the state's
// extension into n equal-width buckets with counts — the data behind the
// range-filter form of Example 3 (§5.1). Entities with several values count
// once per distinct bucket. Returns nil when fewer than two distinct
// numeric values exist (a plain value facet serves better then).
func (m *Model) NumericBuckets(s *State, p rdf.Term, n int) []Bucket {
	if n <= 0 {
		n = 5
	}
	type ev struct {
		entity rdf.Term
		value  float64
	}
	var pairs []ev
	lo, hi := math.Inf(1), math.Inf(-1)
	distinct := map[float64]struct{}{}
	m.G.Match(rdf.Any, p, rdf.Any, func(t rdf.Triple) bool {
		if !s.Ext.Has(t.S) {
			return true
		}
		v, ok := t.O.Float()
		if !ok {
			return true
		}
		pairs = append(pairs, ev{t.S, v})
		distinct[v] = struct{}{}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		return true
	})
	if len(distinct) < 2 {
		return nil
	}
	width := (hi - lo) / float64(n)
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i] = Bucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width}
	}
	buckets[n-1].Hi = hi
	// Count each (entity, bucket) pair once.
	seen := map[[2]interface{}]struct{}{}
	for _, pr := range pairs {
		idx := int((pr.value - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		key := [2]interface{}{pr.entity, idx}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		buckets[idx].Count++
	}
	return buckets
}

// ClickBucket restricts the state to entities whose p-value falls in the
// bucket: two range conditions in one transition.
func (m *Model) ClickBucket(s *State, p rdf.Term, b Bucket, last bool) *State {
	lo := rdf.NewDecimal(b.Lo)
	hi := rdf.NewDecimal(b.Hi)
	s2 := m.ClickRange(s, Path{{P: p}}, ">=", lo)
	if last {
		return m.ClickRange(s2, Path{{P: p}}, "<=", hi)
	}
	return m.ClickRange(s2, Path{{P: p}}, "<", hi)
}

// DateBuckets groups the date values of facet p by year, returning
// (year, count) pairs sorted by year — the calendar drill-down the
// transform button's YEAR/MONTH decomposition supports.
func (m *Model) DateBuckets(s *State, p rdf.Term) []ValueCount {
	counts := map[int]int{}
	seen := map[[2]interface{}]struct{}{}
	m.G.Match(rdf.Any, p, rdf.Any, func(t rdf.Triple) bool {
		if !s.Ext.Has(t.S) {
			return true
		}
		tm, ok := t.O.Time()
		if !ok {
			return true
		}
		key := [2]interface{}{t.S, tm.Year()}
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		counts[tm.Year()]++
		return true
	})
	years := make([]int, 0, len(counts))
	for y := range counts {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]ValueCount, len(years))
	for i, y := range years {
		out[i] = ValueCount{Value: rdf.NewInteger(int64(y)), Count: counts[y]}
	}
	return out
}
