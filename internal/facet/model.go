package facet

import (
	"math"
	"sort"
	"time"

	"rdfanalytics/internal/par"
	"rdfanalytics/internal/rdf"
)

// TermSet is an extension: a set of resources with deterministic iteration.
type TermSet struct {
	set   map[rdf.Term]struct{}
	items []rdf.Term // sorted lazily
	dirty bool
}

// NewTermSet builds a set from the given terms.
func NewTermSet(ts ...rdf.Term) *TermSet {
	s := &TermSet{set: make(map[rdf.Term]struct{}, len(ts))}
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// Add inserts t.
func (s *TermSet) Add(t rdf.Term) {
	if _, ok := s.set[t]; !ok {
		s.set[t] = struct{}{}
		s.dirty = true
	}
}

// Has reports membership.
func (s *TermSet) Has(t rdf.Term) bool {
	_, ok := s.set[t]
	return ok
}

// Len returns the cardinality.
func (s *TermSet) Len() int { return len(s.set) }

// Items returns the members, sorted.
func (s *TermSet) Items() []rdf.Term {
	if s.dirty || s.items == nil {
		s.items = make([]rdf.Term, 0, len(s.set))
		for t := range s.set {
			s.items = append(s.items, t)
		}
		sort.Slice(s.items, func(i, j int) bool { return s.items[i].Less(s.items[j]) })
		s.dirty = false
	}
	return s.items
}

// State is one interaction state: an extension (the displayed objects) and
// an intention (the query whose answer the extension is).
type State struct {
	Ext *TermSet
	Int Intention
}

// Model is the faceted-search model over one graph. It offers the state
// space primitives of §5.3: Restrict, Joins, class/property transitions and
// path expansion.
type Model struct {
	G      *rdf.Graph
	Schema *rdf.Schema
	// MaxValues caps the number of values listed per facet (0 = unlimited);
	// the GUI shows the top values and a "more" affordance.
	MaxValues int
	// Parallelism bounds the workers used for transition-marker counting
	// (PropertyFacets): 0 means GOMAXPROCS, 1 forces sequential. Output is
	// identical at every setting.
	Parallelism int
}

// NewModel builds a model over g. The graph should already be materialized
// (rdf.Materialize) so that inst() honors subclass/subproperty semantics —
// the closure C(K) of §5.3.1.
func NewModel(g *rdf.Graph) *Model {
	return &Model{G: g, Schema: rdf.SchemaOf(g)}
}

// Start returns the initial state s0: the extension holds every resource
// that appears as a subject (the named individuals of the dataset) and the
// intention is unrestricted.
func (m *Model) Start() *State {
	ext := NewTermSet()
	m.G.Match(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		if t.S.IsResource() && !m.isSchemaEntity(t.S) {
			ext.Add(t.S)
		}
		return true
	})
	return &State{Ext: ext}
}

// isSchemaEntity filters classes and properties out of the object list.
func (m *Model) isSchemaEntity(t rdf.Term) bool {
	if _, ok := m.Schema.Classes[t]; ok {
		return true
	}
	if _, ok := m.Schema.Properties[t]; ok {
		return true
	}
	return false
}

// StartFrom returns a state whose extension is an externally produced
// result set (e.g. a keyword query), per §5.4.1.
func (m *Model) StartFrom(results []rdf.Term) *State {
	return &State{
		Ext: NewTermSet(results...),
		Int: Intention{Seed: append([]rdf.Term{}, results...)},
	}
}

// Restrict implements Restrict(E, p:v) of §5.3.1.
func (m *Model) Restrict(e *TermSet, p rdf.Term, inverse bool, v rdf.Term) *TermSet {
	out := NewTermSet()
	if inverse {
		// e' survives if (v, p, e') holds.
		m.G.Match(v, p, rdf.Any, func(t rdf.Triple) bool {
			if e.Has(t.O) {
				out.Add(t.O)
			}
			return true
		})
		return out
	}
	m.G.Match(rdf.Any, p, v, func(t rdf.Triple) bool {
		if e.Has(t.S) {
			out.Add(t.S)
		}
		return true
	})
	return out
}

// RestrictSet implements Restrict(E, p:vset).
func (m *Model) RestrictSet(e *TermSet, p rdf.Term, inverse bool, vset *TermSet) *TermSet {
	out := NewTermSet()
	for _, v := range vset.Items() {
		for _, t := range m.Restrict(e, p, inverse, v).Items() {
			out.Add(t)
		}
	}
	return out
}

// RestrictClass implements Restrict(E, c).
func (m *Model) RestrictClass(e *TermSet, c rdf.Term) *TermSet {
	out := NewTermSet()
	m.G.Match(rdf.Any, rdf.NewIRI(rdf.RDFType), c, func(t rdf.Triple) bool {
		if e.Has(t.S) {
			out.Add(t.S)
		}
		return true
	})
	return out
}

// RestrictOp filters e by a literal comparison at the end of a single hop:
// the range-filter button of Example 3.
func (m *Model) RestrictOp(e *TermSet, p rdf.Term, op string, v rdf.Term) *TermSet {
	out := NewTermSet()
	m.G.Match(rdf.Any, p, rdf.Any, func(t rdf.Triple) bool {
		if !e.Has(t.S) {
			return true
		}
		if compareHolds(t.O, op, v) {
			out.Add(t.S)
		}
		return true
	})
	return out
}

func compareHolds(a rdf.Term, op string, b rdf.Term) bool {
	if op == "" || op == "=" {
		return a == b
	}
	if op == "!=" {
		return a != b
	}
	af, okA := a.Float()
	bf, okB := b.Float()
	if okA && okB {
		switch op {
		case "<":
			return af < bf
		case "<=":
			return af <= bf
		case ">":
			return af > bf
		case ">=":
			return af >= bf
		}
		return false
	}
	// Only genuinely temporal literals (xsd:date / xsd:dateTime) compare on
	// the time line; a plain string that parses like a date does not.
	if !a.IsTemporal() || !b.IsTemporal() {
		return false
	}
	at, okA2 := a.Time()
	bt, okB2 := b.Time()
	if okA2 && okB2 {
		switch op {
		case "<":
			return at.Before(bt)
		case "<=":
			return !at.After(bt)
		case ">":
			return at.After(bt)
		case ">=":
			return !at.Before(bt)
		}
	}
	return false
}

// Joins implements Joins(E, p) of §5.3.1: the values linked with the
// elements of E via p, with the count of E-members carrying each value.
// The counting runs in dictionary-ID space: one scan of the predicate's
// index with integer membership tests; value terms are materialized only
// for the result map.
func (m *Model) Joins(e *TermSet, p rdf.Term, inverse bool) map[rdf.Term]int {
	pid, ok := m.G.TermID(p)
	if !ok {
		return map[rdf.Term]int{}
	}
	return m.joinsIDs(m.extIDSet(e), pid, inverse)
}

// extIDSet resolves the extension members to dictionary IDs once, so the
// same set can be reused across every property of a facet computation.
// Terms the graph has never seen cannot join and are dropped.
func (m *Model) extIDSet(e *TermSet) map[rdf.ID]struct{} {
	ids := make(map[rdf.ID]struct{}, e.Len())
	for t := range e.set {
		if id, ok := m.G.TermID(t); ok {
			ids[id] = struct{}{}
		}
	}
	return ids
}

// joinsIDs is the ID-space core of Joins. Triples are set-unique per
// predicate, so counting needs no dedup pass. Counts are collected on IDs
// under the scan and materialized afterwards (TermOf must not be called
// inside the MatchIDs callback).
func (m *Model) joinsIDs(eIDs map[rdf.ID]struct{}, pid rdf.ID, inverse bool) map[rdf.Term]int {
	counts := map[rdf.ID]int{}
	m.G.MatchIDs(0, pid, 0, func(s, _, o rdf.ID) bool {
		if inverse {
			if _, ok := eIDs[o]; ok {
				counts[s]++
			}
		} else if _, ok := eIDs[s]; ok {
			counts[o]++
		}
		return true
	})
	out := make(map[rdf.Term]int, len(counts))
	for id, c := range counts {
		out[m.G.TermOf(id)] = c
	}
	return out
}

// ValueCount is one transition marker: a clickable value with its count.
type ValueCount struct {
	Value rdf.Term
	Count int
}

// sortValueCounts orders markers by descending count, then term order — the
// usual facet display order.
func sortValueCounts(vcs []ValueCount) {
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].Count != vcs[j].Count {
			return vcs[i].Count > vcs[j].Count
		}
		return vcs[i].Value.Less(vcs[j].Value)
	})
}

// ClassNode is a node of the hierarchical class facet (Fig 5.4 a–b):
// a class with the count of current objects it covers and its direct
// subclasses under the reflexive-transitive reduction.
type ClassNode struct {
	Class    rdf.Term
	Count    int
	Children []ClassNode
}

// ClassFacet computes the class-based transition markers for s: the maximal
// classes with nonzero counts, hierarchically organized (§5.3.2, Alg. 5
// Part B). Classes covering no current object are pruned (query guidance:
// no click leads to an empty result).
func (m *Model) ClassFacet(s *State) []ClassNode {
	defer observeSince(classFacetSeconds, time.Now())
	var build func(c rdf.Term) (ClassNode, bool)
	build = func(c rdf.Term) (ClassNode, bool) {
		count := m.RestrictClass(s.Ext, c).Len()
		node := ClassNode{Class: c, Count: count}
		for _, sub := range m.Schema.DirectSubClasses(c) {
			if child, ok := build(sub); ok {
				node.Children = append(node.Children, child)
			}
		}
		if count == 0 && len(node.Children) == 0 {
			return node, false
		}
		return node, true
	}
	var out []ClassNode
	for _, c := range m.Schema.MaximalClasses() {
		if node, ok := build(c); ok {
			out = append(out, node)
		}
	}
	return out
}

// Facet is one property facet: the property, its direction, and its value
// markers with counts (Fig 5.4 c).
type Facet struct {
	P       rdf.Term
	Inverse bool
	Values  []ValueCount
}

// Total returns the number of E-members having the property (the count
// shown next to the facet name, "by manufacturer (2)").
func (f Facet) Total(m *Model, e *TermSet) int {
	out := NewTermSet()
	if f.Inverse {
		m.G.Match(rdf.Any, f.P, rdf.Any, func(t rdf.Triple) bool {
			if e.Has(t.O) {
				out.Add(t.O)
			}
			return true
		})
	} else {
		m.G.Match(rdf.Any, f.P, rdf.Any, func(t rdf.Triple) bool {
			if e.Has(t.S) {
				out.Add(t.S)
			}
			return true
		})
	}
	return out.Len()
}

// PropertyFacets computes the property-based transition markers of s
// (Alg. 5 Part C): one facet per property applicable to the extension, each
// with its joined values and counts. Inverse facets are included when
// includeInverse is set (the model's Pr⁻¹). The extension's ID set is
// resolved once and the per-property counting fans out across the worker
// pool (Model.Parallelism); results land in per-property slots, so output
// is identical at every parallelism level.
func (m *Model) PropertyFacets(s *State, includeInverse bool) []Facet {
	defer observeSince(propFacetsSeconds, time.Now())
	props := m.applicableProperties()
	eIDs := m.extIDSet(s.Ext)
	slots := make([][]Facet, len(props))
	par.Do(len(props), par.Workers(m.Parallelism), func(i int) {
		p := props[i]
		pid, ok := m.G.TermID(p)
		if !ok {
			return
		}
		if values := m.joinsIDs(eIDs, pid, false); len(values) > 0 {
			slots[i] = append(slots[i], m.makeFacet(p, false, values))
		}
		if includeInverse {
			if ivalues := m.joinsIDs(eIDs, pid, true); len(ivalues) > 0 {
				slots[i] = append(slots[i], m.makeFacet(p, true, ivalues))
			}
		}
	})
	var out []Facet
	for _, fs := range slots {
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P.Less(out[j].P)
		}
		return !out[i].Inverse && out[j].Inverse
	})
	return out
}

func (m *Model) applicableProperties() []rdf.Term {
	var props []rdf.Term
	for p := range m.Schema.Properties {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Less(props[j]) })
	return props
}

func (m *Model) makeFacet(p rdf.Term, inverse bool, values map[rdf.Term]int) Facet {
	f := Facet{P: p, Inverse: inverse}
	for v, c := range values {
		f.Values = append(f.Values, ValueCount{Value: v, Count: c})
	}
	sortValueCounts(f.Values)
	if m.MaxValues > 0 && len(f.Values) > m.MaxValues {
		f.Values = f.Values[:m.MaxValues]
	}
	return f
}

// RankFacets orders facets by how much a click on them would tell the user:
// the Shannon entropy of the facet's value distribution over the extension,
// normalized by its coverage. High-entropy facets split the focus evenly
// (informative clicks); single-valued facets rank last. Classic faceted-UI
// ordering; the GUI shows the most useful facets first.
func RankFacets(m *Model, e *TermSet, facets []Facet) []Facet {
	type scored struct {
		f     Facet
		score float64
	}
	out := make([]scored, len(facets))
	for i, f := range facets {
		total := 0
		for _, vc := range f.Values {
			total += vc.Count
		}
		h := 0.0
		if total > 0 {
			for _, vc := range f.Values {
				p := float64(vc.Count) / float64(total)
				if p > 0 {
					h -= p * math.Log2(p)
				}
			}
		}
		coverage := float64(f.Total(m, e)) / float64(max(e.Len(), 1))
		out[i] = scored{f: f, score: h * coverage}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	ranked := make([]Facet, len(out))
	for i, s := range out {
		ranked[i] = s.f
	}
	return ranked
}

// ExpandPath computes the transition markers at the end of a successive
// property path p1…pk (§5.3.2, Fig 5.5): M_i = Joins(M_{i-1}, p_i) with
// M_0 = s.Ext. It returns the markers of the last step, or nil when the
// sequence is not successive (produces no values).
func (m *Model) ExpandPath(s *State, path Path) []ValueCount {
	defer observeSince(expandPathSeconds, time.Now())
	cur := s.Ext
	var values map[rdf.Term]int
	for _, step := range path {
		values = m.Joins(cur, step.P, step.Inverse)
		if len(values) == 0 {
			return nil
		}
		next := NewTermSet()
		for v := range values {
			if v.IsResource() || true { // literals can be grouped too
				next.Add(v)
			}
		}
		cur = next
	}
	var out []ValueCount
	for v, c := range values {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sortValueCounts(out)
	return out
}

// ClickValue performs the transition of selecting value v at the end of
// path (Eq. 5.1): the extension is restricted backwards through the path
// and the intention gains the corresponding condition.
func (m *Model) ClickValue(s *State, path Path, v rdf.Term) *State {
	ext := m.restrictThroughPath(s.Ext, path, NewTermSet(v))
	in := s.Int.Clone()
	in.Conds = append(in.Conds, Cond{Path: append(Path{}, path...), Value: v})
	return &State{Ext: ext, Int: in}
}

// ClickValueSet selects a set of values at the path end (multi-select).
func (m *Model) ClickValueSet(s *State, path Path, vs []rdf.Term) *State {
	ext := m.restrictThroughPath(s.Ext, path, NewTermSet(vs...))
	in := s.Int.Clone()
	in.Conds = append(in.Conds, Cond{Path: append(Path{}, path...), Values: append([]rdf.Term{}, vs...)})
	return &State{Ext: ext, Int: in}
}

// ClickRange applies a literal comparison at the end of a 1-hop path: the
// range filter of Example 3 (§5.1).
func (m *Model) ClickRange(s *State, path Path, op string, v rdf.Term) *State {
	if len(path) != 1 {
		// Ranges over longer paths: restrict through the path by computing
		// matching end values first.
		end := m.ExpandPath(s, path)
		match := NewTermSet()
		for _, vc := range end {
			if compareHolds(vc.Value, op, v) {
				match.Add(vc.Value)
			}
		}
		ext := m.restrictThroughPath(s.Ext, path, match)
		in := s.Int.Clone()
		in.Conds = append(in.Conds, Cond{Path: append(Path{}, path...), Op: op, Value: v})
		return &State{Ext: ext, Int: in}
	}
	ext := m.RestrictOp(s.Ext, path[0].P, op, v)
	in := s.Int.Clone()
	in.Conds = append(in.Conds, Cond{Path: append(Path{}, path...), Op: op, Value: v})
	return &State{Ext: ext, Int: in}
}

// ClickClass performs a class-based transition: the new extension is the
// current objects of type c; the intention records the class.
func (m *Model) ClickClass(s *State, c rdf.Term) *State {
	ext := m.RestrictClass(s.Ext, c)
	in := s.Int.Clone()
	in.Class = c
	return &State{Ext: ext, Int: in}
}

// SwitchFocus pivots the focus to the other end of property step: the new
// extension holds the resources joined with the current entities, and the
// intention records the pivot. This is the "switch between entity types"
// capability of the base model (§5.2.1 differentiator iii) — e.g. moving
// from a set of laptops to the set of their manufacturers, which then has
// its own facets (size, origin, founder ...).
func (m *Model) SwitchFocus(s *State, step PathStep) *State {
	vals := m.Joins(s.Ext, step.P, step.Inverse)
	ext := NewTermSet()
	for v := range vals {
		if v.IsResource() {
			ext.Add(v)
		}
	}
	base := s.Int.Clone()
	stepCopy := step
	return &State{
		Ext: ext,
		Int: Intention{Base: &base, PivotStep: &stepCopy},
	}
}

// restrictThroughPath implements Eq. 5.1: starting from the selected end
// markers M'_k, restrict each intermediate marker set and finally the
// extension.
func (m *Model) restrictThroughPath(ext *TermSet, path Path, endValues *TermSet) *TermSet {
	// Recompute the forward marker sets M_1..M_k.
	markers := make([]*TermSet, len(path)+1)
	markers[0] = ext
	for i, step := range path {
		vals := m.Joins(markers[i], step.P, step.Inverse)
		next := NewTermSet()
		for v := range vals {
			next.Add(v)
		}
		markers[i+1] = next
	}
	// Backward restriction: M'_k = endValues ∩ M_k; M'_i = Restrict(M_i,
	// p_{i+1} : M'_{i+1}).
	restricted := NewTermSet()
	for _, v := range endValues.Items() {
		if markers[len(path)].Has(v) {
			restricted.Add(v)
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		restricted = m.RestrictSet(markers[i], path[i].P, path[i].Inverse, restricted)
	}
	return restricted
}
