package facet

import (
	"math/rand"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestRandomWalkInvariants drives long random interaction walks over a
// generated KG and checks, at every state, the model's core invariants:
//
//  1. soundness of counts — every transition marker's count equals the size
//     of the extension its click produces;
//  2. no dead ends — every offered marker leads to a non-empty state;
//  3. intention/extension agreement — the SPARQL compilation of the state's
//     intention (Table 5.2) answers exactly the set-computed extension
//     (Table 5.1).
func TestRandomWalkInvariants(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 120, Companies: 8, Seed: 21, Materialize: true})
	m := NewModel(g)
	rng := rand.New(rand.NewSource(77))
	for walk := 0; walk < 12; walk++ {
		s := m.Start()
		// Start from a random class with instances.
		classes := m.ClassFacet(s)
		if len(classes) == 0 {
			t.Fatal("no classes")
		}
		var flat []ClassNode
		var collect func(ns []ClassNode)
		collect = func(ns []ClassNode) {
			for _, n := range ns {
				if n.Count > 0 {
					flat = append(flat, n)
				}
				collect(n.Children)
			}
		}
		collect(classes)
		s = m.ClickClass(s, flat[rng.Intn(len(flat))].Class)
		for step := 0; step < 4; step++ {
			facets := m.PropertyFacets(s, rng.Intn(2) == 0)
			if len(facets) == 0 {
				break
			}
			f := facets[rng.Intn(len(facets))]
			if len(f.Values) == 0 {
				continue
			}
			vc := f.Values[rng.Intn(len(f.Values))]
			path := Path{{P: f.P, Inverse: f.Inverse}}
			next := m.ClickValue(s, path, vc.Value)
			// Invariant 1+2: count soundness, no dead ends.
			if next.Ext.Len() != vc.Count {
				t.Fatalf("walk %d step %d: marker %s=%s count %d but extension %d",
					walk, step, f.P.LocalName(), vc.Value.LocalName(), vc.Count, next.Ext.Len())
			}
			if next.Ext.Len() == 0 {
				t.Fatalf("walk %d step %d: dead end offered", walk, step)
			}
			s = next
			// Invariant 3: intention/extension agreement.
			ans, err := s.Int.Answer(m.G)
			if err != nil {
				t.Fatalf("walk %d step %d: intention failed: %v\n%s",
					walk, step, err, s.Int.ToSPARQL())
			}
			got := NewTermSet(ans...)
			if got.Len() != s.Ext.Len() {
				t.Fatalf("walk %d step %d: SPARQL %d vs sets %d\nintention: %s",
					walk, step, got.Len(), s.Ext.Len(), s.Int)
			}
			for _, e := range s.Ext.Items() {
				if !got.Has(e) {
					t.Fatalf("walk %d step %d: %v missing from SPARQL answer", walk, step, e)
				}
			}
		}
	}
}

// TestRandomWalkWithPivots mixes focus switches into the walks; invariant 3
// must keep holding across entity-type changes.
func TestRandomWalkWithPivots(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 80, Companies: 6, Seed: 5, Materialize: true})
	m := NewModel(g)
	rng := rand.New(rand.NewSource(55))
	pe := func(l string) rdf.Term { return rdf.NewIRI(datagen.ExampleNS + l) }
	for walk := 0; walk < 8; walk++ {
		s := m.ClickClass(m.Start(), pe("Laptop"))
		for step := 0; step < 3; step++ {
			if rng.Intn(2) == 0 {
				// Pivot along a random applicable property.
				facets := m.PropertyFacets(s, false)
				var resourceFacets []Facet
				for _, f := range facets {
					if len(f.Values) > 0 && f.Values[0].Value.IsResource() {
						resourceFacets = append(resourceFacets, f)
					}
				}
				if len(resourceFacets) == 0 {
					continue
				}
				f := resourceFacets[rng.Intn(len(resourceFacets))]
				s = m.SwitchFocus(s, PathStep{P: f.P, Inverse: f.Inverse})
			} else {
				facets := m.PropertyFacets(s, false)
				if len(facets) == 0 {
					break
				}
				f := facets[rng.Intn(len(facets))]
				if len(f.Values) == 0 {
					continue
				}
				s = m.ClickValue(s, Path{{P: f.P, Inverse: f.Inverse}},
					f.Values[rng.Intn(len(f.Values))].Value)
			}
			if s.Ext.Len() == 0 {
				t.Fatalf("walk %d step %d: empty extension", walk, step)
			}
			ans, err := s.Int.Answer(m.G)
			if err != nil {
				t.Fatalf("walk %d step %d: %v\n%s", walk, step, err, s.Int.ToSPARQL())
			}
			got := NewTermSet(ans...)
			if got.Len() != s.Ext.Len() {
				t.Fatalf("walk %d step %d: SPARQL %d vs sets %d\n%s\n%s",
					walk, step, got.Len(), s.Ext.Len(), s.Int, s.Int.ToSPARQL())
			}
		}
	}
}
