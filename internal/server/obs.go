package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
)

// Counters for session lifecycle events; the active-session count is a
// GaugeFunc registered in NewWithConfig (it reads the live map).
var (
	sessionsCreated = obs.Default.Counter("rdfa_http_sessions_created_total")
	sessionsEvicted = obs.Default.Counter("rdfa_http_sessions_evicted_total")
)

// statusWriter captures the status code a handler writes, defaulting to 200
// when the handler never calls WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler: every request goes through the
// telemetry middleware, which records a per-endpoint latency histogram and
// a per-endpoint/status request counter, plus the hardening middleware —
// panic recovery, POST body caps, and (when the operator enabled fault
// injection) a per-request fault site. The endpoint label is the ServeMux
// pattern that matched (e.g. "POST /api/run"), so cardinality is bounded by
// the route table, not by URLs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	// Request-ID middleware: keep a well-formed client-supplied X-Request-ID
	// (so ids propagate through proxies and retries), mint one otherwise, and
	// stamp it on both the request (handlers, the slow-query log and traces
	// read it back) and the response.
	id := r.Header.Get("X-Request-ID")
	if !validRequestID(id) {
		id = newRequestID()
	}
	r.Header.Set("X-Request-ID", id)
	sw.Header().Set("X-Request-ID", id)
	// Trace-ID middleware, same contract: accept a well-formed client
	// X-Trace-ID (distributed callers correlate their own traces), mint one
	// otherwise. Handlers thread it into the engine via queryCtx; cached
	// answers overwrite the response header with the retained filler's ID.
	tid := r.Header.Get("X-Trace-ID")
	if !validRequestID(tid) {
		tid = obs.NewTraceID()
	}
	r.Header.Set("X-Trace-ID", tid)
	sw.Header().Set("X-Trace-ID", tid)
	if r.Method == http.MethodPost {
		if max := s.cfg.maxBodyBytes(); max > 0 {
			r.Body = http.MaxBytesReader(sw, r.Body, max)
		}
	}
	func() {
		defer recoverPanic(sw, r)
		// The X-Fault header only selects a site; nothing fires unless the
		// operator armed that site via RDFA_FAULT (chaos testing).
		if fault.Enabled() {
			if site := r.Header.Get("X-Fault"); site != "" {
				fault.Inject("server.handler." + site)
			}
		}
		s.mux.ServeHTTP(sw, r)
	}()
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	endpoint := r.Pattern
	if endpoint == "" {
		endpoint = "unmatched"
	}
	dur := time.Since(start)
	obs.Default.Counter("rdfa_http_requests_total",
		"endpoint", endpoint, "status", strconv.Itoa(sw.status)).Inc()
	lat := obs.Default.Histogram("rdfa_http_request_seconds", nil,
		"endpoint", endpoint)
	// Exemplar link: when the trace this request produced (or was served
	// from — cached answers overwrite the response header) was retained,
	// attach its ID to the latency observation so a p95 spike on /metrics
	// or /api/timeseries resolves to a concrete span waterfall. Only IDs
	// that will actually resolve through /api/traces are attached.
	if tid := sw.Header().Get("X-Trace-ID"); s.traces.Contains(tid) {
		lat.ObserveExemplar(dur.Seconds(), tid)
	} else {
		lat.Observe(dur.Seconds())
	}
	s.recordHTTPSLO(endpoint, sw.status, dur)
}

// recordHTTPSLO folds one finished request into the HTTP objectives:
// availability (good = non-5xx), the process-wide latency objective, and a
// lazily created per-endpoint latency objective. Probe and scrape endpoints
// are excluded from the per-endpoint set — they are not user traffic and
// would dilute the burn rates.
func (s *Server) recordHTTPSLO(endpoint string, status int, dur time.Duration) {
	failed := status >= 500
	s.sloHTTPAvail.Record(!failed)
	s.sloHTTPLat.Observe(dur, failed)
	if t := s.cfg.SLO.LatencyTarget; t > 0 && s.cfg.SLO.LatencyThreshold > 0 && sloTrackedEndpoint(endpoint) {
		s.slos.Add("endpoint:"+endpoint, obs.SLOLatency, t, s.cfg.SLO.LatencyThreshold).
			Observe(dur, failed)
	}
}

// sloTrackedEndpoint reports whether the matched route pattern deserves its
// own latency objective.
func sloTrackedEndpoint(pattern string) bool {
	switch pattern {
	case "", "unmatched", "GET /metrics", "GET /healthz", "GET /readyz",
		"GET /api/timeseries", "GET /api/alerts":
		return false
	}
	return !strings.Contains(pattern, "/debug/")
}

// handleMetrics serves the whole registry in Prometheus text format, or —
// when the scraper asks for it via Accept — the OpenMetrics exposition,
// which additionally carries trace-ID exemplars on histogram buckets. The
// default stays byte-compatible 0.0.4 text so existing scrapers and parsers
// are untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if obs.AcceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		obs.Default.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// traceJSON is the wire form of GET /api/trace: the span tree and operator
// profile of the newest analytic query and of the newest protocol-endpoint
// query, whichever exist.
//
// Deprecated surface: /api/trace predates the retention store and keeps its
// single-slot "latest of each kind" semantics as an alias over the store
// (with the session's own last trace as fallback when retention is
// disabled). New integrations should use GET /api/traces — search over
// every retained trace — and GET /api/traces/{id}. The handler advertises
// this via Deprecation and Link headers.
type traceJSON struct {
	Analytics        *obs.SpanJSON `json:"analytics,omitempty"`
	AnalyticsProfile any           `json:"analytics_profile,omitempty"`
	SPARQL           *obs.SpanJSON `json:"sparql,omitempty"`
	SPARQLProfile    any           `json:"sparql_profile,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</api/traces>; rel="alternate"`)
	var out traceJSON
	if d, ok := s.traces.Latest("analytics"); ok {
		spans := d.Spans
		out.Analytics = &spans
		out.AnalyticsProfile = d.Profile
	}
	if d, ok := s.traces.Latest("sparql"); ok {
		spans := d.Spans
		out.SPARQL = &spans
		out.SPARQLProfile = d.Profile
	}
	// Fallback for retention-disabled servers (and for analytic queries the
	// sampler dropped): the session still holds its own last trace.
	if out.Analytics == nil {
		s.mu.Lock()
		sess := s.sessionFor(r)
		if tr := sess.LastTrace(); tr != nil {
			e := tr.Export()
			out.Analytics = &e
			if p := sess.LastProfile().Export(); p != nil {
				out.AnalyticsProfile = p
			}
		}
		s.mu.Unlock()
	}
	if out.Analytics == nil && out.SPARQL == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no query traced yet; POST /api/run or /sparql first"))
		return
	}
	writeJSON(w, out)
}

// workloadJSON is the GET /api/workload payload: the workload snapshot plus
// the planner feedback store's counters.
type workloadJSON struct {
	obs.WorkloadSnapshot
	Feedback sparql.FeedbackStats `json:"feedback"`
}

// handleWorkload serves the workload profiler's snapshot: RED aggregates,
// the recent-query ring, per-fingerprint summaries, the plan-vs-actual
// misestimation table and the feedback store's hit/miss/seed counters. The
// workload and feedback stores have their own locks, so the server mutex is
// not taken — the endpoint stays responsive while a query runs.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, workloadJSON{WorkloadSnapshot: s.workload.Snapshot(), Feedback: s.feedback.Stats()})
}

// mountDebug exposes net/http/pprof on the server's own mux (the stdlib
// only self-registers on DefaultServeMux), gated behind Config.Debug.
func mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
