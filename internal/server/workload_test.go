package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/obs"
)

// driveWorkload sends one protocol SELECT and one analytic run through ts,
// so the workload profiler has both kinds of traffic.
func driveWorkload(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(
		`SELECT ?s ?m WHERE { ?s a <`+datagen.ExampleNS+`Laptop> . ?s <`+datagen.ExampleNS+`manufacturer> ?m }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sparql status = %d", resp.StatusCode)
	}
	postJSON(t, base+"/api/click/class", map[string]any{"class": datagen.ExampleNS + "Laptop"})
	postJSON(t, base+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": datagen.ExampleNS + "manufacturer"}}})
	postJSON(t, base+"/api/aggregate", map[string]any{"op": "COUNT"})
	postJSON(t, base+"/api/run", map[string]any{})
}

// TestWorkloadEndpoint drives both query kinds and checks GET /api/workload
// aggregates them by fingerprint, with the plan-vs-actual table populated
// from the operator profiles.
func TestWorkloadEndpoint(t *testing.T) {
	ts := testServer(t)
	driveWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/api/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.WorkloadSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total < 2 {
		t.Fatalf("total = %d, want >= 2 (one sparql, one analytics)", snap.Total)
	}
	kinds := map[string]bool{}
	for _, fp := range snap.Fingerprints {
		kinds[fp.Kind] = true
		if fp.ID == "" || fp.Shape == "" {
			t.Errorf("fingerprint missing id/shape: %+v", fp)
		}
	}
	if !kinds["sparql"] || !kinds["analytics"] {
		t.Errorf("fingerprint kinds = %v, want sparql and analytics", kinds)
	}
	if len(snap.Recent) == 0 || snap.Recent[0].Outcome != "ok" {
		t.Errorf("recent ring empty or wrong outcome: %+v", snap.Recent)
	}
	// The profiled scans carried stats-cache estimates, so the misestimation
	// table has at least one site with a sane q-error.
	if len(snap.Misestimates) == 0 {
		t.Fatal("misestimation table empty after profiled queries")
	}
	for _, e := range snap.Misestimates {
		if e.QError < 1 {
			t.Errorf("q-error %v < 1 at %s %s", e.QError, e.Op, e.Label)
		}
	}
}

// TestWorkloadShapeStripsConstants checks two protocol queries differing
// only in a constant share one fingerprint.
func TestWorkloadShapeStripsConstants(t *testing.T) {
	ts := testServer(t)
	for _, lit := range []string{`"a"`, `"b"`} {
		resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(
			`SELECT ?s WHERE { ?s <`+datagen.ExampleNS+`name> `+lit+` }`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var snap obs.WorkloadSnapshot
	resp, err := http.Get(ts.URL + "/api/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, fp := range snap.Fingerprints {
		if strings.Contains(fp.Shape, "name") && fp.Count != 2 {
			t.Errorf("constant-differing queries split fingerprints: %+v", fp)
		}
	}
}

// TestDashboard fetches /debug/dashboard and checks it is a self-contained
// HTML page: inline styles only, no scripts, no external assets, with the
// workload and misestimation sections rendered.
func TestDashboard(t *testing.T) {
	ts := testServer(t)
	driveWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"RDF-Analytics dashboard", "Workload (RED)", "p95 latency",
		"Plan vs. actual", "q-error", "Recent queries",
		"<svg", `http-equiv="refresh"`, "SLO error budgets", "Alerts",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Self-contained: no scripts, and no src/href pointing off-host.
	if strings.Contains(page, "<script") {
		t.Error("dashboard must not embed scripts")
	}
	if re := regexp.MustCompile(`(src|href)\s*=\s*"(https?:)?//`); re.MatchString(page) {
		t.Errorf("dashboard references external assets: %s", re.FindString(page))
	}
}

// TestTraceProfile checks GET /api/trace carries the operator profiles next
// to the span trees for both query kinds.
func TestTraceProfile(t *testing.T) {
	ts := testServer(t)
	driveWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		AnalyticsProfile *struct {
			Op       string            `json:"op"`
			Children []json.RawMessage `json:"children"`
		} `json:"analytics_profile"`
		SPARQLProfile *struct {
			Op       string            `json:"op"`
			Calls    int               `json:"calls"`
			Children []json.RawMessage `json:"children"`
		} `json:"sparql_profile"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SPARQLProfile == nil || out.SPARQLProfile.Op != "sparql" ||
		out.SPARQLProfile.Calls != 1 || len(out.SPARQLProfile.Children) == 0 {
		t.Errorf("sparql profile = %+v", out.SPARQLProfile)
	}
	if out.AnalyticsProfile == nil || out.AnalyticsProfile.Op != "run_analytics" ||
		len(out.AnalyticsProfile.Children) == 0 {
		t.Errorf("analytics profile = %+v", out.AnalyticsProfile)
	}
}
