// Resource governance for the HTTP layer: per-query deadlines, request
// body caps, panic recovery, idle-session expiry, and graceful shutdown.
// Together with the cooperative cancellation inside internal/sparql these
// make the server safe to expose: a pathological query times out with a
// structured error instead of wedging the process, a panicking handler
// answers 500 instead of killing the listener, and SIGTERM drains
// in-flight requests instead of dropping them.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
)

// DefaultMaxBodyBytes caps POST request bodies when Config.MaxBodyBytes is
// zero: large enough for any realistic query or update, small enough that a
// hostile client cannot balloon memory.
const DefaultMaxBodyBytes = 10 << 20 // 10 MiB

// StatusClientClosedRequest is the nginx-convention status for requests
// whose client went away before the response was written (no stdlib const).
const StatusClientClosedRequest = 499

var (
	serverPanics    = obs.Default.Counter("rdfa_server_panics_total")
	sessionsExpired = obs.Default.Counter("rdfa_http_sessions_expired_total")
)

// queryCtx derives the evaluation context for a request: the request's own
// context (cancelled when the client disconnects) bounded by the server's
// per-query wall-clock deadline, when one is configured. The middleware's
// request and trace IDs ride along so traces minted deeper in the stack
// (core sessions, updates) adopt the IDs already on the wire.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	ctx = obs.WithRequestID(ctx, requestID(r))
	ctx = obs.WithTraceID(ctx, traceIDOf(r))
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.QueryTimeout)
	}
	return ctx, func() {}
}

// abortStatus maps an evaluation error onto the response taxonomy:
// deadline expiry → 504, client disconnect → 499, resource budget → 422,
// oversized body → 413, anything else → the fallback.
func abortStatus(err error, fallback int) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, sparql.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	default:
		return fallback
	}
}

// queryError writes an evaluation error with its taxonomy status and, for
// aborted queries, a machine-readable reason alongside the message.
func queryError(w http.ResponseWriter, err error) {
	code := abortStatus(err, http.StatusInternalServerError)
	if reason := sparql.AbortReason(err); reason != "" {
		body := map[string]string{"error": err.Error(), "reason": reason}
		if id := w.Header().Get("X-Request-ID"); id != "" {
			body["request_id"] = id
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		writeJSONBody(w, body)
		return
	}
	httpError(w, code, err)
}

// recoverPanic is the deferred half of the recovery middleware: a panicking
// handler is converted into a 500 (when nothing was written yet), counted,
// and logged with its stack. http.ErrAbortHandler is re-raised — it is the
// sanctioned way to abort a response and net/http handles it itself.
func recoverPanic(w *statusWriter, r *http.Request) {
	v := recover()
	if v == nil {
		return
	}
	if v == http.ErrAbortHandler {
		panic(v)
	}
	serverPanics.Inc()
	slog.Error("handler panic",
		"method", r.Method, "path", r.URL.Path,
		"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
	if w.status == 0 {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
	}
}

// ---- idle-session expiry ----

// sweepExpired removes sessions idle since before cutoff, returning how
// many were expired. Exposed separately from the background sweeper so
// tests can drive it deterministically.
func (s *Server) sweepExpired(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.sessions {
		if e.lastAt.Before(cutoff) {
			delete(s.sessions, id)
			sessionsExpired.Inc()
			n++
		}
	}
	return n
}

// startSweeper launches the background goroutine that expires idle
// sessions every ttl/4 (clamped to [1s, 1min]). Stopped by Close.
func (s *Server) startSweeper(ttl time.Duration) {
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	s.sweepStop = make(chan struct{})
	s.sweepDone = make(chan struct{})
	go func() {
		defer close(s.sweepDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.sweepStop:
				return
			case now := <-t.C:
				s.sweepExpired(now.Add(-ttl))
			}
		}
	}()
}

// Close stops the server's background work (the session sweeper and the
// telemetry sampler). Safe to call when neither is running, and idempotent
// is not required — call once when tearing the server down.
func (s *Server) Close() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop = nil
	}
	s.sampler.Close()
}

// ---- graceful shutdown ----

// Run serves h on addr until ctx is cancelled, then drains in-flight
// requests for up to grace before returning. The error is nil on a clean
// drain, the listener error if serving failed, or the shutdown error when
// the grace period expired with requests still running.
func Run(ctx context.Context, addr string, h http.Handler, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return RunListener(ctx, ln, h, grace)
}

// RunListener is Run over an existing listener (tests use a :0 listener to
// get a free port). The listener is owned by the server once passed in.
// When h exposes a drain flag (our *Server does), it flips before Shutdown
// so /healthz and /readyz fail the balancer's probes while in-flight
// requests finish under the grace period.
func RunListener(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	if d, ok := h.(interface{ SetDraining(bool) }); ok {
		d.SetDraining(true)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return srv.Shutdown(shCtx)
}
