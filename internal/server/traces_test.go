package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfanalytics/internal/conformance"
	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// doSparqlTraced runs one GET /sparql in-process and returns the recorder so
// callers can read any response header (doSparql only surfaces X-Cache).
func doSparqlTraced(s *Server, query string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", "/sparql?query="+url.QueryEscape(query), nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func searchTraces(t *testing.T, s *Server, params string) tracesJSON {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/traces?"+params, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/traces?%s = %d: %s", params, rec.Code, rec.Body.String())
	}
	var out tracesJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad /api/traces payload: %v", err)
	}
	return out
}

func getTrace(t *testing.T, s *Server, id string) (int, obs.TraceDetail) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/traces/"+id, nil))
	var d obs.TraceDetail
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
			t.Fatalf("bad /api/traces/%s payload: %v", id, err)
		}
	}
	return rec.Code, d
}

// TestTraceRetentionDifferential is the satellite differential oracle:
// across the whole SELECT/ASK conformance corpus, trace retention and
// exemplar attachment change no query results — /sparql responses are
// byte-identical with retention on (the default) and off, cached and
// uncached, cold and warm.
func TestTraceRetentionDifferential(t *testing.T) {
	cases, err := conformance.LoadCases(filepath.Join("..", "conformance", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"retention", Config{}},
		{"no-retention", Config{TraceRetention: obs.TraceStoreConfig{Disabled: true}}},
		{"retention+cache", Config{CacheBytes: 1 << 20}},
		{"no-retention+cache", Config{CacheBytes: 1 << 20, TraceRetention: obs.TraceStoreConfig{Disabled: true}}},
	}
	ran := 0
	for _, c := range cases {
		if c.Expect == "expect.ttl" {
			continue // CONSTRUCT: uncached bypass path, covered by conformance itself
		}
		data, err := os.ReadFile(filepath.Join(c.Dir, "data.ttl"))
		if err != nil {
			t.Fatal(err)
		}
		queryBytes, err := os.ReadFile(filepath.Join(c.Dir, "query.rq"))
		if err != nil {
			t.Fatal(err)
		}
		query := string(queryBytes)

		var refBody string
		var refCode int
		for i, cc := range configs {
			g, err := rdf.LoadTurtleString(string(data))
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Category, c.Name, err)
			}
			s := NewWithConfig(g, "", cc.cfg)
			for pass := 0; pass < 2; pass++ {
				code, _, _, body := doSparql(s, query)
				if i == 0 && pass == 0 {
					refCode, refBody = code, string(body)
					continue
				}
				if code != refCode || string(body) != refBody {
					t.Errorf("%s/%s: config %s pass %d diverges (code %d vs %d)\n ref: %s\n got: %s",
						c.Category, c.Name, cc.name, pass, code, refCode, refBody, body)
				}
			}
			s.Close()
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("differential oracle matched zero corpus cases")
	}
	t.Logf("retention differential over %d corpus cases × %d configs × 2 passes", ran, len(configs))
}

// TestTraceSearchAPI drives the full retention round trip through the HTTP
// surface: a /sparql query is stamped with a trace ID, the completed trace
// is searchable through every /api/traces filter, and the single-trace
// fetch returns the span waterfall and operator profile.
func TestTraceSearchAPI(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	q := laptopQuery()
	rec := doSparqlTraced(s, q, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/sparql = %d: %s", rec.Code, rec.Body.String())
	}
	tid := rec.Header().Get("X-Trace-ID")
	if len(tid) != 16 {
		t.Fatalf("X-Trace-ID = %q, want a 16-char minted id", tid)
	}

	fp := sparql.FingerprintID(sparql.FingerprintQuery(q))

	// Unfiltered search finds it, newest first, with retention accounting.
	out := searchTraces(t, s, "")
	if len(out.Traces) == 0 {
		t.Fatal("no traces retained after a completed query")
	}
	found := false
	for _, tr := range out.Traces {
		if tr.ID == tid {
			found = true
			if tr.Kind != "sparql" || tr.Outcome != "ok" || tr.FingerprintID != fp {
				t.Errorf("retained summary wrong: %+v", tr)
			}
			if tr.Reason == "" {
				t.Error("summary missing retention reason")
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in search results", tid)
	}
	if out.Stats.Retained == 0 {
		t.Error("stats.retained = 0 with traces in the store")
	}

	// Every filter narrows correctly.
	if got := searchTraces(t, s, "fingerprint="+url.QueryEscape(fp)); len(got.Traces) == 0 {
		t.Error("fingerprint filter dropped the trace")
	}
	if got := searchTraces(t, s, "fingerprint=no-such-fingerprint"); len(got.Traces) != 0 {
		t.Errorf("bogus fingerprint matched %d traces", len(got.Traces))
	}
	if got := searchTraces(t, s, "kind=sparql&outcome=ok"); len(got.Traces) == 0 {
		t.Error("kind+outcome filter dropped the trace")
	}
	if got := searchTraces(t, s, "min_ms=3600000"); len(got.Traces) != 0 {
		t.Errorf("min_ms=1h matched %d traces", len(got.Traces))
	}
	if got := searchTraces(t, s, "since="+url.QueryEscape(time.Now().Add(time.Hour).Format(time.RFC3339))); len(got.Traces) != 0 {
		t.Errorf("future since matched %d traces", len(got.Traces))
	}

	// Bad parameters are rejected, not ignored.
	for _, bad := range []string{"min_ms=-1", "min_ms=fast", "since=yesterday", "limit=0", "limit=x"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/traces?"+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /api/traces?%s = %d, want 400", bad, rec.Code)
		}
	}

	// Single-trace fetch: spans and profile round-trip.
	code, d := getTrace(t, s, tid)
	if code != http.StatusOK {
		t.Fatalf("GET /api/traces/%s = %d", tid, code)
	}
	if d.ID != tid || d.Spans.Name == "" {
		t.Fatalf("trace detail incomplete: %+v", d)
	}
	if d.Profile == nil {
		t.Error("SELECT trace retained without operator profile")
	}
	if code, _ := getTrace(t, s, "feedfeedfeedfeed"); code != http.StatusNotFound {
		t.Errorf("bogus trace id = %d, want 404", code)
	}
}

// TestTraceClientIDAdopted pins the ID-propagation contract: a well-formed
// client X-Trace-ID is adopted end to end; a malformed one is replaced by a
// minted ID.
func TestTraceClientIDAdopted(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := doSparqlTraced(s, laptopQuery(), map[string]string{"X-Trace-ID": "client-trace.01"})
	if got := rec.Header().Get("X-Trace-ID"); got != "client-trace.01" {
		t.Fatalf("well-formed client trace id not adopted: %q", got)
	}
	if code, d := getTrace(t, s, "client-trace.01"); code != http.StatusOK || d.ID != "client-trace.01" {
		t.Fatalf("client trace id not retained: %d %+v", code, d)
	}

	rec = doSparqlTraced(s, laptopQuery(), map[string]string{"X-Trace-ID": "bad id\nwith junk"})
	got := rec.Header().Get("X-Trace-ID")
	if got == "" || strings.ContainsAny(got, " \n") {
		t.Fatalf("malformed client id not replaced: %q", got)
	}
}

// TestTraceCachedAnswerLinksFiller: a cache hit reuses the filler's trace ID
// on the response so dashboards always land on a retained execution, and the
// serve is recorded against that trace.
func TestTraceCachedAnswerLinksFiller(t *testing.T) {
	s, _ := newTestServer(t, resilienceConfig())
	q := laptopQuery()
	fill := doSparqlTraced(s, q, nil)
	fillID := fill.Header().Get("X-Trace-ID")
	if fillID == "" {
		t.Fatal("filler got no trace id")
	}
	hit := doSparqlTraced(s, q, nil)
	if hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", hit.Header().Get("X-Cache"))
	}
	if got := hit.Header().Get("X-Trace-ID"); got != fillID {
		t.Fatalf("cache hit trace id %q, want filler's %q", got, fillID)
	}
	code, d := getTrace(t, s, fillID)
	if code != http.StatusOK {
		t.Fatalf("filler trace gone: %d", code)
	}
	if d.Serves["hit"] != 1 {
		t.Errorf("serves = %v, want hit:1", d.Serves)
	}
}

// TestTraceErrorRetainedAlways: failed executions are retained at 100% with
// the abort taxonomy as outcome, and are filterable by it.
func TestTraceErrorRetainedAlways(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if err := fault.Configure("server.sparql.exec=error:boom@100"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	var ids []string
	for i := 0; i < 5; i++ {
		rec := doSparqlTraced(s, fmt.Sprintf("SELECT ?s WHERE { ?s ?p%d ?o }", i), nil)
		if rec.Code == http.StatusOK {
			t.Fatalf("fault-injected query %d succeeded", i)
		}
		ids = append(ids, rec.Header().Get("X-Trace-ID"))
	}
	out := searchTraces(t, s, "outcome=error&kind=sparql")
	got := map[string]bool{}
	for _, tr := range out.Traces {
		got[tr.ID] = true
		if tr.Err == "" {
			t.Errorf("error trace %s lost its message", tr.ID)
		}
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("errored trace %s not retained (errors must be kept at 100%%)", id)
		}
	}
	if reason := searchTraces(t, s, "reason=error"); len(reason.Traces) < len(ids) {
		t.Errorf("reason=error found %d, want ≥%d", len(reason.Traces), len(ids))
	}
}

// TestTraceAliasDeprecated: the legacy single-slot /api/trace keeps working
// but advertises its replacement.
func TestTraceAliasDeprecated(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	doSparqlTraced(s, laptopQuery(), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/trace?kind=sparql", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/trace = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("alias missing Deprecation header")
	}
	if !strings.Contains(rec.Header().Get("Link"), "/api/traces") {
		t.Errorf("alias Link header = %q, want pointer to /api/traces", rec.Header().Get("Link"))
	}
}

// TestTraceRetentionDisabled: with retention off the search API answers 409,
// /sparql still works, and no X-Trace-ID exemplar machinery interferes.
func TestTraceRetentionDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRetention: obs.TraceStoreConfig{Disabled: true}})
	rec := doSparqlTraced(s, laptopQuery(), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/sparql with retention off = %d", rec.Code)
	}
	for _, p := range []string{"/api/traces", "/api/traces/0123456789abcdef"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		if rec.Code != http.StatusConflict {
			t.Errorf("GET %s with retention off = %d, want 409", p, rec.Code)
		}
	}
}

// TestTraceExemplarResolves closes the drill-down loop: the OpenMetrics
// exposition carries the query's trace ID as an exemplar on the HTTP
// latency histogram, and that ID resolves through /api/traces/{id}.
func TestTraceExemplarResolves(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := doSparqlTraced(s, laptopQuery(), nil)
	tid := rec.Header().Get("X-Trace-ID")
	if tid == "" {
		t.Fatal("no trace id on response")
	}

	mreq := httptest.NewRequest("GET", "/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	if ct := mrec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content negotiation failed: Content-Type %q", ct)
	}
	body := mrec.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF terminator")
	}
	want := `# {trace_id="` + tid + `"}`
	attached := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "rdfa_http_request_seconds_bucket") && strings.Contains(line, want) {
			attached = true
			break
		}
	}
	if !attached {
		t.Fatalf("trace %s not attached as an exemplar to rdfa_http_request_seconds", tid)
	}
	if code, _ := getTrace(t, s, tid); code != http.StatusOK {
		t.Fatalf("exemplar trace id does not resolve: %d", code)
	}

	// The default 0.0.4 exposition must stay exemplar-free.
	prec := httptest.NewRecorder()
	s.ServeHTTP(prec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(prec.Body.String(), "# {") {
		t.Fatal("exemplar leaked into the Prometheus 0.0.4 exposition")
	}
}

// BenchmarkTraceRetentionOverhead measures the full /sparql request path
// with the tail-sampling retention store armed versus disabled. The cache
// is off so every iteration executes the query, offers the completed trace
// to the sampler and (when retained) attaches an exemplar — the acceptance
// bar is hot-path overhead of a few percent at most.
func BenchmarkTraceRetentionOverhead(b *testing.B) {
	q := laptopQuery()
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"retention", Config{}},
		{"disabled", Config{TraceRetention: obs.TraceStoreConfig{Disabled: true}}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, _ := newTestServer(b, bc.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rec := doSparqlTraced(s, q, nil); rec.Code != http.StatusOK {
					b.Fatalf("/sparql = %d", rec.Code)
				}
			}
		})
	}
}

// TestTraceConcurrentRetainSearch hammers retention and search from many
// goroutines through the public HTTP surface — meaningful under -race.
func TestTraceConcurrentRetainSearch(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRetention: obs.TraceStoreConfig{MaxTraces: 32}})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				doSparqlTraced(s, fmt.Sprintf("SELECT ?s WHERE { ?s ?p%d_%d ?o }", w, i), nil)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/traces?limit=10", nil))
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/api/traces/0123456789abcdef", nil))
			}
		}()
	}
	wg.Wait()
	out := searchTraces(t, s, "")
	if len(out.Traces) == 0 || len(out.Traces) > 32 {
		t.Fatalf("retained %d traces, want 1..32", len(out.Traces))
	}
}
