package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func hardeningGraph(n int) *rdf.Graph {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "ex:a%d a ex:Item ; ex:p %d .\n", i, i)
		fmt.Fprintf(&sb, "ex:b%d ex:q %d .\n", i, i)
	}
	return rdf.MustLoadTurtle(sb.String())
}

// TestRecoveryMiddleware: a handler panic (injected via the X-Fault site)
// answers 500 with a JSON error, increments the panic counter, and leaves
// the server serving subsequent requests.
func TestRecoveryMiddleware(t *testing.T) {
	if err := fault.Configure("server.handler.boom=panic:kaboom"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	srv := New(hardeningGraph(5), "http://e/")
	before := metricValue(t, srv, "rdfa_server_panics_total")

	req := httptest.NewRequest("GET", "/api/state", nil)
	req.Header.Set("X-Fault", "boom")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("panicking request: content-type %q", ct)
	}
	if after := metricValue(t, srv, "rdfa_server_panics_total"); after != before+1 {
		t.Fatalf("rdfa_server_panics_total = %v, want %v", after, before+1)
	}
	// The server must still answer.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/state", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200", rec.Code)
	}
}

// metricValue scrapes one counter from the server's /metrics output.
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			fmt.Sscanf(rest, "%g", &v)
			return v
		}
	}
	return 0
}

// TestMaxBodyBytes: an oversized POST body answers 413 with a JSON error.
func TestMaxBodyBytes(t *testing.T) {
	srv := NewWithConfig(hardeningGraph(5), "http://e/", Config{MaxBodyBytes: 128})
	big := strings.Repeat("x", 1024)
	body := url.Values{"query": {big}}.Encode()
	req := httptest.NewRequest("POST", "/sparql", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("413 body not structured JSON: %s", rec.Body.String())
	}
	// A small body still works.
	body = url.Values{"query": {"SELECT * WHERE { ?s ?p ?o } LIMIT 1"}}.Encode()
	req = httptest.NewRequest("POST", "/sparql", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", rec.Code)
	}
}

// TestSessionTTLSweep: idle sessions are expired by the sweep and counted.
func TestSessionTTLSweep(t *testing.T) {
	srv := New(hardeningGraph(5), "http://e/")
	for _, id := range []string{"s1", "s2", "s3"} {
		req := httptest.NewRequest("GET", "/api/state", nil)
		req.Header.Set("X-Session", id)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}
	before := metricValue(t, srv, "rdfa_http_sessions_expired_total")
	if n := srv.sweepExpired(time.Now().Add(-time.Minute)); n != 0 {
		t.Fatalf("fresh sessions expired: %d", n)
	}
	if n := srv.sweepExpired(time.Now().Add(time.Minute)); n != 3 {
		t.Fatalf("expired %d sessions, want 3", n)
	}
	if after := metricValue(t, srv, "rdfa_http_sessions_expired_total"); after != before+3 {
		t.Fatalf("rdfa_http_sessions_expired_total = %v, want %v", after, before+3)
	}
	srv.mu.Lock()
	left := len(srv.sessions)
	srv.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions left after sweep", left)
	}
}

// TestSweeperLifecycle: a TTL-configured server runs and stops its sweeper.
func TestSweeperLifecycle(t *testing.T) {
	srv := NewWithConfig(hardeningGraph(3), "http://e/", Config{SessionTTL: time.Hour})
	if srv.sweepStop == nil {
		t.Fatal("sweeper not started despite SessionTTL")
	}
	srv.Close() // must not hang
}

// TestQueryTimeoutEndpoint: with a short server-level deadline and an
// injected join delay, /sparql answers a structured 504 within ~2x the
// deadline, the timeout counter moves, and the server stays healthy.
func TestQueryTimeoutEndpoint(t *testing.T) {
	if err := fault.Configure("sparql.join=delay:300ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	srv := NewWithConfig(hardeningGraph(60), "http://e/", Config{QueryTimeout: 100 * time.Millisecond})
	before := metricValue(t, srv, "rdfa_sparql_queries_timeout_total")

	q := url.QueryEscape("SELECT * WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?y }")
	start := time.Now()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/sparql?query="+q, nil))
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"reason":"timeout"`) {
		t.Fatalf("504 body missing timeout reason: %s", rec.Body.String())
	}
	// The deadline is 100ms and the injected delay 300ms: the abort must
	// land well before the query would have finished naturally.
	if elapsed > 2*time.Second {
		t.Fatalf("timeout answered after %s", elapsed)
	}
	if after := metricValue(t, srv, "rdfa_sparql_queries_timeout_total"); after != before+1 {
		t.Fatalf("rdfa_sparql_queries_timeout_total = %v, want %v", after, before+1)
	}
	// Server healthy afterwards.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/state", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up: status %d", rec.Code)
	}
}

// TestBudgetEndpoint: a configured row budget turns a cross product into a
// structured 422.
func TestBudgetEndpoint(t *testing.T) {
	srv := NewWithConfig(hardeningGraph(200), "http://e/", Config{
		Limits: sparql.Limits{MaxIntermediateRows: 1000},
	})
	q := url.QueryEscape("SELECT * WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?y }")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/sparql?query="+q, nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"reason":"budget"`) {
		t.Fatalf("422 body missing budget reason: %s", rec.Body.String())
	}
}

// TestGracefulShutdownDrain: cancelling the run context while a request is
// in flight drains it — the client still gets its full response and Run
// returns nil.
func TestGracefulShutdownDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "drained")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- RunListener(ctx, ln, h, 5*time.Second) }()

	var (
		wg       sync.WaitGroup
		body     string
		reqErr   error
		respCode int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			reqErr = err
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		body, respCode = string(b), resp.StatusCode
	}()
	<-started
	cancel() // begin shutdown with the request still in flight
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if reqErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", reqErr)
	}
	if respCode != http.StatusOK || body != "drained" {
		t.Fatalf("drained response: code %d body %q", respCode, body)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("RunListener returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunListener did not return after drain")
	}
	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
