// The overload-resilient /sparql serving flow: answer cache → degraded-mode
// stale serving → circuit breaker → singleflight collapse → admission gate →
// engine. Assembled from the primitives in internal/resilience; this file
// owns the HTTP-facing policy — what is cacheable, what each rejection looks
// like on the wire, and which metrics each outcome feeds.
//
// Outcome taxonomy on the X-Cache response header: "hit" (fresh cache),
// "stale" (degraded-mode serve of a previous graph version within the
// staleness window), "collapsed" (shared a concurrent identical execution),
// "miss" (executed, possibly filling the cache), "negative" (remembered
// parse error), "bypass" (shape not cacheable: CSV accept, CONSTRUCT,
// DESCRIBE).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/resilience"
	"rdfanalytics/internal/sparql"
)

// Metric handles for the resilience layer. The per-result/per-reason
// variants are resolved eagerly so every family (and its label values)
// exists on /metrics from process start — the convention metrics-lint
// checks.
var (
	cacheHit       = obs.Default.Counter("rdfa_cache_requests_total", "result", "hit")
	cacheStale     = obs.Default.Counter("rdfa_cache_requests_total", "result", "stale")
	cacheMiss      = obs.Default.Counter("rdfa_cache_requests_total", "result", "miss")
	cacheNegative  = obs.Default.Counter("rdfa_cache_requests_total", "result", "negative")
	cacheBypass    = obs.Default.Counter("rdfa_cache_requests_total", "result", "bypass")
	cacheCollapsed = obs.Default.Counter("rdfa_cache_collapsed_total")
	cacheFills     = obs.Default.Counter("rdfa_cache_fills_total")

	cacheEvictAnswer  = obs.Default.Counter("rdfa_cache_evictions_total", "cache", "answer")
	_                 = obs.Default.Counter("rdfa_cache_evictions_total", "cache", "session")
	admissionAdmitted = obs.Default.Counter("rdfa_admission_admitted_total")
	admissionWait     = obs.Default.Histogram("rdfa_admission_wait_seconds", nil)
	breakerRejected   = obs.Default.Counter("rdfa_breaker_rejected_total")
)

// admissionRejected resolves the rejection counter for one shed reason.
func admissionRejected(reason string) *obs.Counter {
	return obs.Default.Counter("rdfa_admission_rejected_total", "reason", reason)
}

// breakerTransition resolves the transition counter for one target state.
func breakerTransition(to string) *obs.Counter {
	return obs.Default.Counter("rdfa_breaker_transitions_total", "to", to)
}

// abortedForBreaker reports whether an execution error belongs to the
// failure class that trips the circuit breaker (timeout/budget). A bare
// cancellation is resolved through the context's cancellation cause: when
// the last waiter abandons a singleflight call because its own deadline
// expired, the leader's context is cancelled with that cause moments
// before its identical timer would have fired, and the engine reports
// "cancelled" for what is effectively a timeout — which signal the
// evaluator saw first is scheduling luck, not a meaningful distinction.
func abortedForBreaker(ctx context.Context, err error) bool {
	switch sparql.AbortReason(err) {
	case "timeout", "budget":
		return true
	case "cancelled":
		return errors.Is(context.Cause(ctx), context.DeadlineExceeded)
	}
	return false
}

// Eager registration of the label values the flow can emit.
var _ = []*obs.Counter{
	admissionRejected(resilience.ReasonQueueFull),
	admissionRejected(resilience.ReasonShapeLimit),
	admissionRejected(resilience.ReasonDeadline),
	admissionRejected(resilience.ReasonDegraded),
	breakerTransition(resilience.StateOpen),
	breakerTransition(resilience.StateHalfOpen),
	breakerTransition(resilience.StateClosed),
}

// defaultDegradedShedCost is the per-shape EWMA execution cost above which
// uncached shapes are shed while degraded, when Config.DegradedShedCost is
// zero.
const defaultDegradedShedCost = 250 * time.Millisecond

// Degraded reports whether the server is in graceful-degradation mode:
// graceful shutdown has begun, or a page-severity SLO alert is firing. While
// degraded the serving flow prefers slightly-stale cache hits, refuses to
// queue new work, and sheds uncached shapes whose learned cost exceeds
// DegradedShedCost.
func (s *Server) Degraded() bool {
	return s.draining.Load() || s.alerts.MaxSeverity() == obs.SeverityPage
}

func (s *Server) shedCostSeconds() float64 {
	if s.cfg.DegradedShedCost > 0 {
		return s.cfg.DegradedShedCost.Seconds()
	}
	return defaultDegradedShedCost.Seconds()
}

// serveQuery is the SELECT/ASK read path. raw is the query text exactly as
// received — it is part of the cache key, so queries that share a structural
// fingerprint but differ in any constant (value, datatype, language tag,
// timezone) can never share an entry.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ctx context.Context, q *sparql.Query, raw string) {
	start := time.Now()
	shape := sparql.Fingerprint(q)
	fpID := sparql.FingerprintID(shape)
	if q.Form == sparql.FormSelect && strings.Contains(r.Header.Get("Accept"), "text/csv") {
		// CSV rendering is not cached (the cache stores one rendering per
		// query); execute directly under the admission gate.
		cacheBypass.Inc()
		w.Header().Set("X-Cache", "bypass")
		s.execSelectCSV(w, r, ctx, q, raw, shape, fpID)
		return
	}

	key := resilience.CacheKey(fpID, raw)
	if ans, ok := s.answers.Lookup(key, s.graph.Version()); ok {
		cacheHit.Inc()
		s.serveCachedAnswer(w, ans, "hit", raw, shape, start)
		return
	}
	degraded := s.Degraded()
	if degraded {
		if ans, ok := s.answers.LookupStale(key, time.Now(), s.cfg.StaleWindow); ok {
			cacheStale.Inc()
			s.serveCachedAnswer(w, ans, "stale", raw, shape, start)
			return
		}
	}
	if aerr := s.breakers.Allow(fpID, time.Now()); aerr != nil {
		breakerRejected.Inc()
		admitReject(w, aerr)
		return
	}
	if degraded {
		// Shed known-expensive uncached shapes first: their learned EWMA
		// cost is exactly the work a degraded server cannot afford.
		if ewma, ok := s.breakers.EWMASeconds(fpID); ok && ewma > s.shedCostSeconds() {
			aerr := &resilience.AdmitError{
				Reason:     resilience.ReasonDegraded,
				Msg:        "server degraded: shedding expensive uncached query shape",
				RetryAfter: 5 * time.Second,
			}
			admissionRejected(aerr.Reason).Inc()
			admitReject(w, aerr)
			return
		}
	}

	v, collapsed, err := s.flight.Do(ctx, key, s.cfg.QueryTimeout, func(execCtx context.Context) (any, error) {
		return s.executeQuery(execCtx, q, raw, shape, fpID, key, requestID(r), traceIDOf(r))
	})
	if err != nil {
		var aerr *resilience.AdmitError
		if errors.As(err, &aerr) {
			admitReject(w, aerr)
			return
		}
		queryError(w, err)
		return
	}
	ans := v.(*resilience.Answer)
	if collapsed {
		cacheCollapsed.Inc()
		s.serveCachedAnswer(w, ans, "collapsed", raw, shape, start)
		return
	}
	cacheMiss.Inc()
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", ans.ContentType)
	w.Write(ans.Body)
}

// executeQuery is the singleflight leader body: admission, fault site,
// engine execution, observability recording (including the tail-sampling
// retention offer), rendering, and the version-checked cache fill. execCtx
// is detached from any single caller's request (see resilience.Group),
// bounded by the query timeout. traceID is the leader's middleware-minted
// trace ID; the retained trace and the cached answer both carry it, so
// every response serving this execution can point at the same waterfall.
func (s *Server) executeQuery(execCtx context.Context, q *sparql.Query, raw, shape, fpID, key, reqID, traceID string) (any, error) {
	waitStart := time.Now()
	release, aerr := s.gate.Acquire(execCtx, fpID, s.Degraded())
	if aerr != nil {
		admissionRejected(aerr.Reason).Inc()
		return nil, aerr
	}
	admissionAdmitted.Inc()
	admissionWait.Observe(time.Since(waitStart).Seconds())
	defer release()

	version := s.graph.Version()
	start := time.Now()
	tr := obs.NewTrace("sparql")
	tr.SetID(traceID)
	if reqID != "" {
		tr.Root().SetAttr("request_id", reqID)
	}
	// Tail-sampling offer: fires on every exit path below, after the
	// outcome and duration are known — exactly the information head
	// sampling lacks. The store decides retention; this is a few map
	// lookups when the trace is sampled out.
	var retainProf any
	offer := func(err error) {
		tr.Finish()
		outcome, msg := traceOutcome(err)
		s.traces.Offer(obs.TraceCandidate{
			Trace: tr, Profile: retainProf, Kind: "sparql",
			FingerprintID: fpID, Shape: shape, Query: raw,
			RequestID: reqID, Duration: time.Since(start),
			Outcome: outcome, Cache: "miss", Err: msg,
		})
	}
	// The chaos site sits inside the measured window so injected latency is
	// indistinguishable from a genuinely slow execution downstream (slow-query
	// log, workload profile, breaker cost EWMA).
	if err := fault.InjectCtx(execCtx, "server.sparql.exec"); err != nil {
		offer(err)
		return nil, err
	}
	var body bytes.Buffer
	var rows int
	var execErr error
	switch q.Form {
	case sparql.FormSelect:
		prof := sparql.NewProfile("sparql")
		res, err := sparql.ExecSelectCtx(execCtx, s.graph, q, sparql.Options{
			Trace: tr, Limits: s.cfg.Limits, Profile: prof,
			Feedback: s.feedback, FingerprintID: fpID,
		})
		execErr = err
		dur := time.Since(start)
		s.slow.Observe("sparql", raw, fpID, reqID, dur, tr)
		if res != nil {
			rows = len(res.Rows)
		}
		s.recordWorkload("sparql", raw, shape, dur, rows, err, prof)
		if exp := prof.Export(); exp != nil {
			retainProf = exp
		}
		if err == nil {
			res.Sort()
			res.WriteJSON(&body)
		}
	case sparql.FormAsk:
		ok, err := sparql.AskCtx(execCtx, s.graph, raw)
		execErr = err
		if err == nil {
			json.NewEncoder(&body).Encode(map[string]any{"head": map[string]any{}, "boolean": ok})
		}
	}
	s.breakers.Observe(fpID, time.Since(start), abortedForBreaker(execCtx, execErr), time.Now())
	offer(execErr)
	if execErr != nil {
		return nil, execErr
	}
	ans := &resilience.Answer{
		Body:        bytes.Clone(body.Bytes()),
		ContentType: "application/sparql-results+json",
		Status:      http.StatusOK,
		Rows:        rows,
		Shape:       shape,
		TraceID:     tr.ID(),
		Version:     version,
		When:        time.Now(),
	}
	// Fill only if the graph version is unchanged: a mutation mid-execution
	// means the result reflects neither version cleanly.
	if s.answers.Enabled() && s.graph.Version() == version {
		s.answers.Store(key, ans)
		cacheFills.Inc()
	}
	return ans, nil
}

// serveCachedAnswer replays a cached/shared answer. The request went through
// the regular middleware, so X-Request-ID and the per-endpoint latency/SLO
// recording are already in place; here we additionally fold the serve into
// the workload profiler so cached traffic stays visible in RED metrics and
// per-shape SLOs, and point the response at the trace of the execution
// that produced the answer (overwriting the middleware-minted ID — this
// request did no execution of its own).
func (s *Server) serveCachedAnswer(w http.ResponseWriter, ans *resilience.Answer, result, raw, shape string, start time.Time) {
	w.Header().Set("X-Cache", result)
	w.Header().Set("Content-Type", ans.ContentType)
	if ans.TraceID != "" {
		w.Header().Set("X-Trace-ID", ans.TraceID)
		s.traces.RecordServe(ans.TraceID, result)
	}
	if ans.Status != 0 && ans.Status != http.StatusOK {
		w.WriteHeader(ans.Status)
	}
	w.Write(ans.Body)
	s.recordWorkload("sparql", raw, shape, time.Since(start), ans.Rows, nil, nil)
}

// execSelectCSV is the uncached CSV rendering of a SELECT, still behind the
// admission gate and circuit breaker.
func (s *Server) execSelectCSV(w http.ResponseWriter, r *http.Request, ctx context.Context, q *sparql.Query, raw, shape, fpID string) {
	if aerr := s.breakers.Allow(fpID, time.Now()); aerr != nil {
		breakerRejected.Inc()
		admitReject(w, aerr)
		return
	}
	release, aerr := s.gate.Acquire(ctx, fpID, s.Degraded())
	if aerr != nil {
		admissionRejected(aerr.Reason).Inc()
		admitReject(w, aerr)
		return
	}
	admissionAdmitted.Inc()
	defer release()
	start := time.Now()
	tr := obs.NewTrace("sparql")
	tr.SetID(traceIDOf(r))
	if id := requestID(r); id != "" {
		tr.Root().SetAttr("request_id", id)
	}
	prof := sparql.NewProfile("sparql")
	res, err := sparql.ExecSelectCtx(ctx, s.graph, q, sparql.Options{
		Trace: tr, Limits: s.cfg.Limits, Profile: prof,
		Feedback: s.feedback, FingerprintID: fpID,
	})
	dur := time.Since(start)
	tr.Finish()
	s.slow.Observe("sparql", raw, fpID, requestID(r), dur, tr)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.recordWorkload("sparql", raw, shape, dur, rows, err, prof)
	s.breakers.Observe(fpID, dur, abortedForBreaker(ctx, err), time.Now())
	outcome, msg := traceOutcome(err)
	var retainProf any
	if exp := prof.Export(); exp != nil {
		retainProf = exp
	}
	s.traces.Offer(obs.TraceCandidate{
		Trace: tr, Profile: retainProf, Kind: "sparql",
		FingerprintID: fpID, Shape: shape, Query: raw,
		RequestID: requestID(r), Duration: dur,
		Outcome: outcome, Cache: "bypass", Err: msg,
	})
	if err != nil {
		queryError(w, err)
		return
	}
	res.Sort()
	w.Header().Set("Content-Type", "text/csv")
	res.WriteCSV(w)
}

// serveGraphQuery is the CONSTRUCT/DESCRIBE path: uncached (triple payloads
// are unbounded and rarely repeated), but admission-gated and
// breaker-protected like every other engine execution.
func (s *Server) serveGraphQuery(w http.ResponseWriter, r *http.Request, ctx context.Context, q *sparql.Query, raw string) {
	shape := sparql.Fingerprint(q)
	fpID := sparql.FingerprintID(shape)
	cacheBypass.Inc()
	w.Header().Set("X-Cache", "bypass")
	if aerr := s.breakers.Allow(fpID, time.Now()); aerr != nil {
		breakerRejected.Inc()
		admitReject(w, aerr)
		return
	}
	release, aerr := s.gate.Acquire(ctx, fpID, s.Degraded())
	if aerr != nil {
		admissionRejected(aerr.Reason).Inc()
		admitReject(w, aerr)
		return
	}
	admissionAdmitted.Inc()
	defer release()
	start := time.Now()
	tr := obs.NewTrace("sparql")
	tr.SetID(traceIDOf(r))
	if id := requestID(r); id != "" {
		tr.Root().SetAttr("request_id", id)
	}
	if q.Form == sparql.FormConstruct {
		tr.Root().SetAttr("form", "construct")
	} else {
		tr.Root().SetAttr("form", "describe")
	}
	var out *rdf.Graph
	var err error
	if q.Form == sparql.FormConstruct {
		out, err = sparql.ConstructCtx(ctx, s.graph, raw)
	} else {
		out, err = sparql.DescribeCtx(ctx, s.graph, raw)
	}
	dur := time.Since(start)
	tr.Finish()
	s.breakers.Observe(fpID, dur, abortedForBreaker(ctx, err), time.Now())
	outcome, msg := traceOutcome(err)
	s.traces.Offer(obs.TraceCandidate{
		Trace: tr, Kind: "sparql",
		FingerprintID: fpID, Shape: shape, Query: raw,
		RequestID: requestID(r), Duration: dur,
		Outcome: outcome, Cache: "bypass", Err: msg,
	})
	if err != nil {
		queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/n-triples")
	rdf.WriteNTriples(w, out)
}

// admitReject writes the structured 503 for a shed request: machine-readable
// reason, the request id, and a Retry-After back-off hint.
func admitReject(w http.ResponseWriter, aerr *resilience.AdmitError) {
	if aerr.RetryAfter > 0 {
		secs := int(aerr.RetryAfter.Round(time.Second).Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	body := map[string]string{"error": aerr.Msg, "reason": aerr.Reason}
	if id := w.Header().Get("X-Request-ID"); id != "" {
		body["request_id"] = id
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	writeJSONBody(w, body)
}
