// Health and telemetry-history endpoints: Kubernetes-style /healthz and
// /readyz probes wired to the server's drain state and the SLO alert
// severity, GET /api/timeseries over the sampler's ring buffers, and
// GET /api/alerts over the burn-rate evaluator's alert log.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"

	"rdfanalytics/internal/obs"
)

// ---- request IDs ----

// maxRequestIDLen bounds client-supplied X-Request-ID values.
const maxRequestIDLen = 64

// newRequestID mints a 16-hex-char random id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts ids that are safe to echo into headers and logs.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// requestID returns the id the middleware stamped on the request.
func requestID(r *http.Request) string {
	return r.Header.Get("X-Request-ID")
}

// ---- health probes ----

// SetDraining flips the drain flag; RunListener sets it when graceful
// shutdown begins, so load balancers see /healthz and /readyz fail while
// in-flight requests finish.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	return s.draining.Load()
}

// handleHealthz is the liveness probe: 200 while the process serves, 503
// once draining (tells the balancer to stop routing here; in-flight
// requests still complete under the shutdown grace).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while draining or while a
// page-severity SLO alert fires (the service is up but violating its
// latency/availability objectives hard enough to shed traffic); warn-level
// alerts degrade the body but keep the probe green.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, map[string]string{"status": "draining"})
		return
	}
	snap := s.alerts.Snapshot()
	switch s.alerts.MaxSeverity() {
	case obs.SeverityPage:
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, map[string]any{"status": "degraded", "alerts": snap.Active})
	case obs.SeverityWarn:
		writeJSONBody(w, map[string]any{"status": "warn", "alerts": snap.Active})
	default:
		writeJSONBody(w, map[string]string{"status": "ok"})
	}
}

// ---- telemetry history ----

// timeseriesJSON is the GET /api/timeseries payload: the ring-buffer
// export plus the exemplars currently attached to matching histogram
// buckets, so a latency spike in the history links to retained traces.
type timeseriesJSON struct {
	obs.TimeseriesJSON
	Exemplars []obs.ExemplarView `json:"exemplars,omitempty"`
}

// handleTimeseries serves the sampler's retained history:
// ?series=<substring> filters keys, ?res=coarse selects the roll-up ring.
// Counter series carry derived per-second rates next to the raw
// cumulative points.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("series")
	res := r.URL.Query().Get("res")
	writeJSON(w, timeseriesJSON{
		TimeseriesJSON: s.sampler.DB().Export(filter, res),
		Exemplars:      obs.Default.ExemplarsMatching(filter, 0),
	})
}

// alertsJSON is the GET /api/alerts payload: the alert log plus every
// objective's last evaluated burn-rate state.
type alertsJSON struct {
	obs.AlertsSnapshot
	SLOs []obs.ObjectiveStatus `json:"slos"`
}

// handleAlerts serves active alerts, the firing/resolved timeline and the
// SLO objective statuses.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, alertsJSON{
		AlertsSnapshot: s.alerts.Snapshot(),
		SLOs:           s.slos.Statuses(),
	})
}
