package server

// uiHTML is the single-page client of the system: the two-frame GUI of
// Fig 5.1/6.2 — class tree and property facets with G/Σ/filter buttons on
// the left, the focus objects on the right, and the Answer Frame (table +
// chart) below. It drives the JSON API with plain JavaScript; each browser
// tab gets its own session id.
const uiHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>RDF-Analytics</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; display: grid;
         grid-template-columns: 340px 1fr; grid-template-rows: auto 1fr auto;
         height: 100vh; }
  header { grid-column: 1 / 3; background: #263238; color: #fff;
           padding: 8px 16px; display: flex; gap: 16px; align-items: baseline; }
  header h1 { font-size: 18px; margin: 0; }
  #breadcrumb { font-size: 13px; opacity: .85; flex: 1; }
  header button { background: #455a64; color: #fff; border: 0;
                  padding: 4px 10px; border-radius: 4px; cursor: pointer; }
  #left { overflow-y: auto; border-right: 1px solid #ddd; padding: 8px; }
  #right { overflow-y: auto; padding: 8px 16px; }
  #answer { grid-column: 1 / 3; border-top: 2px solid #263238; padding: 8px 16px;
            max-height: 40vh; overflow-y: auto; background: #fafafa; }
  .facet { margin-bottom: 10px; }
  .facet-name { font-weight: 600; font-size: 14px; display: flex; gap: 6px;
                align-items: center; }
  .facet-name .btn { font-size: 11px; border: 1px solid #90a4ae; background: #fff;
                     border-radius: 3px; cursor: pointer; padding: 0 5px; }
  .facet-name .btn.active { background: #263238; color: #fff; }
  .val { font-size: 13px; margin-left: 14px; cursor: pointer; color: #1565c0; }
  .val:hover { text-decoration: underline; }
  .count { color: #888; }
  .cls { cursor: pointer; color: #2e7d32; font-size: 14px; }
  .cls:hover { text-decoration: underline; }
  .obj { padding: 3px 0; border-bottom: 1px solid #eee; font-size: 14px; }
  .obj .type { color: #888; font-size: 12px; }
  table { border-collapse: collapse; font-size: 13px; }
  th, td { border: 1px solid #ccc; padding: 3px 10px; text-align: left; }
  th { background: #eceff1; }
  #hifun { font-family: monospace; font-size: 12px; color: #555; }
  .section-title { font-size: 12px; text-transform: uppercase; color: #607d8b;
                   margin: 10px 0 4px; }
</style>
</head>
<body>
<header>
  <h1>RDF-Analytics</h1>
  <span id="breadcrumb"></span>
  <button onclick="act('/api/back')">back</button>
  <button onclick="act('/api/reset')">reset</button>
  <button onclick="runQuery()">run Σ</button>
  <button onclick="act('/api/load-answer')">explore answer</button>
  <button onclick="act('/api/close-level')">close level</button>
</header>
<div id="left"></div>
<div id="right"></div>
<div id="answer"><em>No analytic query yet — pick a class, toggle G on a facet,
Σ on a measure, then “run Σ”.</em></div>
<script>
const sid = 'ui-' + Math.random().toString(36).slice(2);
async function api(path, body) {
  const opts = { headers: { 'X-Session': sid } };
  if (body !== undefined) {
    opts.method = 'POST';
    opts.headers['Content-Type'] = 'application/json';
    opts.body = JSON.stringify(body);
  }
  const resp = await fetch(path, opts);
  const data = await resp.json();
  if (!resp.ok) { alert(data.error || resp.status); throw new Error(data.error); }
  return data;
}
async function act(path, body) { render(await api(path, body || {})); }
function esc(s) { return String(s).replace(/[&<>"]/g,
  c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c])); }
function classTree(nodes, depth) {
  let html = '';
  for (const n of nodes || []) {
    html += '<div style="margin-left:' + depth*14 + 'px" class="cls" ' +
      'onclick="act(\'/api/click/class\', {class: \'' + n.iri + '\'})">' +
      esc(n.label) + ' <span class="count">(' + n.count + ')</span></div>';
    html += classTree(n.children, depth + 1);
  }
  return html;
}
function render(st) {
  document.getElementById('breadcrumb').textContent =
    st.breadcrumb + '  —  ' + st.totalObjects + ' objects, level ' + st.depth +
    (st.hifun ? '   |   ' + st.hifun : '');
  let left = '<div class="section-title">Classes</div>' + classTree(st.classes, 0);
  left += '<div class="section-title">Facets</div>';
  for (const f of st.facets || []) {
    const pjson = JSON.stringify([{p: f.p, inverse: !!f.inverse}]).replace(/"/g, '&quot;');
    left += '<div class="facet"><div class="facet-name">' +
      (f.inverse ? '⁻¹ ' : '') + esc(f.label) +
      ' <span class="btn' + (f.grouped ? ' active' : '') + '" title="group by" ' +
      'onclick="act(\'/api/groupby\', {path: ' + pjson + '})">G</span>' +
      ' <span class="btn' + (f.measured ? ' active' : '') + '" title="aggregate" ' +
      'onclick="aggregate(' + pjson + ')">Σ</span>' +
      (f.numeric ? ' <span class="btn" title="range filter" onclick="range(' + pjson + ')">≷</span>' : '') +
      '</div>';
    for (const v of (f.values || []).slice(0, 12)) {
      const vjson = JSON.stringify(v.term).replace(/"/g, '&quot;');
      left += '<div class="val" onclick="act(\'/api/click/value\', ' +
        '{path: ' + pjson + ', value: ' + vjson + '})">' +
        esc(v.term.label || v.term.value) + ' <span class="count">(' + v.count + ')</span></div>';
    }
    left += '</div>';
  }
  document.getElementById('left').innerHTML = left;
  let right = '<div class="section-title">Objects (' + st.totalObjects + ')</div>';
  for (const o of st.objects || []) {
    right += '<div class="obj">' + esc(o.label) +
      (o.type ? ' <span class="type">: ' + esc(o.type) + '</span>' : '') + '</div>';
  }
  document.getElementById('right').innerHTML = right;
}
async function aggregate(path) {
  const op = prompt('Aggregate function (COUNT, SUM, AVG, MIN, MAX):', 'AVG');
  if (!op) return;
  render(await api('/api/aggregate', {path: path, op: op.toUpperCase()}));
}
async function range(path) {
  const op = prompt('Comparison (>=, >, <=, <, =):', '>=');
  if (!op) return;
  const v = prompt('Value:');
  if (v === null) return;
  const value = /^-?[0-9.]+$/.test(v)
    ? {kind: 'literal', value: v, datatype: 'http://www.w3.org/2001/XMLSchema#' +
       (v.includes('.') ? 'decimal' : 'integer')}
    : {kind: 'literal', value: v};
  render(await api('/api/click/range', {path: path, op: op, value: value}));
}
async function runQuery() {
  const ans = await api('/api/run', {});
  let html = '<div id="hifun">' + esc(ans.hifun) + '</div><table><tr>';
  for (const c of ans.groupCols.concat(ans.measureCols)) html += '<th>' + esc(c) + '</th>';
  html += '</tr>';
  for (const row of ans.rows || []) {
    html += '<tr>';
    for (const cell of row) html += '<td>' + esc(cell.label || cell.value || '') + '</td>';
    html += '</tr>';
  }
  html += '</table>';
  html += '<p><img src="/api/chart?type=bar&session=' + sid + '&t=' + Date.now() + '" alt="chart"></p>';
  document.getElementById('answer').innerHTML = html;
  act('/api/state');
}
act('/api/state');
</script>
</body>
</html>
`
