package server

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
)

// The built-in observability dashboard: one self-contained HTML page
// rendered server-side with html/template — inline CSS, inline SVG
// sparklines, no scripts, no external assets — so it works from a terminal
// browser on an air-gapped box. It shows the RED view of the workload
// (rate, errors, duration quantiles) with sparklines over the sampler's
// retained history, heap/GC trends, SLO error-budget gauges, the alert
// timeline, the top-k slowest query fingerprints with their worst-case
// run, the plan-vs-actual misestimation table fed by the operator
// profiler, and the most recent queries. The page meta-refreshes and is
// served with Cache-Control: no-store, so a browser left open stays live.

// dashboardTopK is how many slow fingerprints and misestimates the page
// shows; the full data is always available from GET /api/workload.
const dashboardTopK = 10

// dashboardSparkN is how many sampler ticks a sparkline spans (fine
// resolution: 60 ticks at the default 10s interval ≈ 10 minutes).
const dashboardSparkN = 60

type dashboardData struct {
	Now          time.Time
	Triples      int
	Terms        int
	Sessions     int
	Snap         obs.WorkloadSnapshot
	ErrorPct     float64
	TopSlow      []obs.FingerprintSummary
	Misestimates []obs.OpEstimate
	Recent       []obs.QueryRecord
	// Feedback is the planner feedback store's counters; FeedbackPct is the
	// hit rate hits/(hits+misses) in percent (0 when nothing was looked up).
	Feedback    sparql.FeedbackStats
	FeedbackPct float64
	// Sparkline series from the telemetry sampler, oldest first: request
	// throughput, 5xx rate, windowed p95 latency (ms), heap in use (MiB)
	// and GC cycle rate.
	ReqRate []float64
	ErrRate []float64
	P95Ms   []float64
	HeapMiB []float64
	GCRate  []float64
	// SLOs and Alerts are the burn-rate evaluator's last state.
	SLOs   []obs.ObjectiveStatus
	Alerts obs.AlertsSnapshot
	// Resilience is the overload-protection card row: answer-cache
	// occupancy and outcome counters, admission gate state, and the
	// degraded-mode flag (see resilience.go).
	Resilience resilienceCard
	// TraceStats/Traces are the tail-sampling retention store's accounting
	// and the newest retained traces; fingerprints throughout the page link
	// into /api/traces so an SLO burn or slow shape drills down to concrete
	// span waterfalls without any scripting.
	TraceStats obs.TraceStoreStats
	Traces     []obs.TraceSummary
}

// resilienceCard is the dashboard's view of the resilience layer.
type resilienceCard struct {
	CacheEnabled bool
	Entries      int
	KiB          int64
	Hits         uint64
	Stale        uint64
	Misses       uint64
	Collapsed    uint64
	Evictions    uint64
	HitPct       float64
	Shed         uint64 // admission rejections, all reasons
	BreakerOpens uint64
	Inflight     int
	Waiting      int
	Degraded     bool
}

// resilienceSnapshot assembles the dashboard card from the live layer.
func (s *Server) resilienceSnapshot() resilienceCard {
	c := resilienceCard{
		CacheEnabled: s.answers.Enabled(),
		Entries:      s.answers.Entries(),
		KiB:          s.answers.Bytes() >> 10,
		Hits:         cacheHit.Value(),
		Stale:        cacheStale.Value(),
		Misses:       cacheMiss.Value(),
		Collapsed:    cacheCollapsed.Value(),
		Evictions:    s.answers.Evictions(),
		BreakerOpens: breakerTransition("open").Value(),
		Inflight:     s.gate.Inflight(),
		Waiting:      s.gate.Waiting(),
		Degraded:     s.Degraded(),
	}
	c.Shed = breakerRejected.Value()
	for _, reason := range []string{"queue_full", "shape_limit", "deadline", "degraded"} {
		c.Shed += admissionRejected(reason).Value()
	}
	if served := c.Hits + c.Stale + c.Collapsed + c.Misses; served > 0 {
		c.HitPct = 100 * float64(c.Hits+c.Stale+c.Collapsed) / float64(served)
	}
	return c
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	snap := s.workload.Snapshot()
	data := dashboardData{
		Now:          time.Now().UTC(),
		Snap:         snap,
		TopSlow:      s.workload.TopSlow(dashboardTopK),
		Misestimates: snap.Misestimates,
		Recent:       snap.Recent,
		Feedback:     s.feedback.Stats(),
		SLOs:         s.slos.Statuses(),
		Alerts:       s.alerts.Snapshot(),
		Resilience:   s.resilienceSnapshot(),
		TraceStats:   s.traces.Stats(),
		Traces:       s.traces.Search(obs.TraceQuery{Limit: dashboardTopK}),
	}
	db := s.sampler.DB()
	data.ReqRate = db.RateSeries("rdfa_http_requests_total{", dashboardSparkN)
	data.ErrRate = db.RateSeriesMatch(func(key string) bool {
		return strings.HasPrefix(key, "rdfa_http_requests_total{") &&
			strings.Contains(key, `status="5`)
	}, dashboardSparkN)
	data.P95Ms = scaleSeries(
		db.QuantileSeries("rdfa_http_request_seconds", 0.95, 5*time.Minute, dashboardSparkN), 1000)
	data.HeapMiB = scaleSeries(db.GaugeSeries("rdfa_go_heap_alloc_bytes", dashboardSparkN), 1.0/(1<<20))
	data.GCRate = db.RateSeries("rdfa_go_gc_cycles_total", dashboardSparkN)
	if n := data.Feedback.Hits + data.Feedback.Misses; n > 0 {
		data.FeedbackPct = 100 * float64(data.Feedback.Hits) / float64(n)
	}
	if len(data.Misestimates) > dashboardTopK {
		data.Misestimates = data.Misestimates[:dashboardTopK]
	}
	if len(data.Recent) > dashboardTopK {
		data.Recent = data.Recent[:dashboardTopK]
	}
	if snap.Total > 0 {
		data.ErrorPct = 100 * float64(snap.Errors) / float64(snap.Total)
	}
	s.mu.Lock()
	st := s.graph.Stats()
	data.Sessions = len(s.sessions)
	s.mu.Unlock()
	data.Triples, data.Terms = st.Triples, st.Terms
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

// scaleSeries multiplies every value by f (unit conversion for display).
func scaleSeries(vals []float64, f float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * f
	}
	return out
}

// sparklineSVG renders vals as an inline SVG polyline, oldest to newest.
// The output contains only printf-formatted numbers, so returning
// template.HTML is safe; an empty or single-point series renders an empty
// frame rather than nothing, keeping table layout stable.
func sparklineSVG(vals []float64, w, h int) template.HTML {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	if len(vals) > 1 {
		min, max := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		span := max - min
		if span <= 0 {
			span = 1
		}
		const pad = 2.0
		pts := make([]string, len(vals))
		for i, v := range vals {
			x := pad + float64(i)*(float64(w)-2*pad)/float64(len(vals)-1)
			y := float64(h) - pad - (v-min)/span*(float64(h)-2*pad)
			pts[i] = fmt.Sprintf("%.1f,%.1f", x, y)
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="#36c" stroke-width="1.5" points="%s"/>`,
			strings.Join(pts, " "))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// gaugeSVG renders an error-budget gauge: a bar whose filled fraction is
// the remaining budget, clamped to [0, 1]; overspent budgets show an empty
// red frame. Safe as template.HTML for the same reason as sparklineSVG.
func gaugeSVG(frac float64, w, h int) template.HTML {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	color := "#2a2"
	switch {
	case frac < 0.25:
		color = "#a00"
	case frac < 0.5:
		color = "#c80"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect x="0.5" y="0.5" width="%d" height="%d" fill="none" stroke="#999"/>`, w-1, h-1)
	fmt.Fprintf(&b, `<rect x="1" y="1" width="%.1f" height="%d" fill="%s"/>`,
		frac*float64(w-2), h-2, color)
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

var dashboardTmpl = template.Must(template.New("dashboard").Funcs(template.FuncMap{
	"ms": func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"qe": func(v float64) string {
		if v == 0 {
			return "–"
		}
		return fmt.Sprintf("%.1f", v)
	},
	"durms": func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
	},
	"add":   func(a, b uint64) uint64 { return a + b },
	"spark": func(vals []float64) template.HTML { return sparklineSVG(vals, 220, 36) },
	"gauge": func(frac float64) template.HTML { return gaugeSVG(frac, 120, 12) },
	"last": func(vals []float64) string {
		if len(vals) == 0 {
			return "–"
		}
		return fmt.Sprintf("%.2f", vals[len(vals)-1])
	},
	"burn": func(m map[string]float64, k string) string {
		return fmt.Sprintf("%.2f", m[k])
	},
	"pct": func(v float64) string { return fmt.Sprintf("%.1f", 100*v) },
	// shapeFP extracts the fingerprint from a per-shape objective name
	// ("shape:<fp>"), or "" for process-wide objectives — the hook that
	// turns SLO and alert rows into /api/traces drill-down links.
	"shapeFP": func(name string) string {
		if fp, ok := strings.CutPrefix(name, "shape:"); ok {
			return fp
		}
		return ""
	},
	"trunc": func(s string) string { return obs.TruncateText(s, 96) },
}).Parse(dashboardHTML))

const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>RDF-Analytics dashboard</title>
<meta http-equiv="refresh" content="10">
<style>
body { font-family: ui-monospace, monospace; max-width: 72rem; margin: 1.5rem auto; padding: 0 1rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.5rem; text-align: left; vertical-align: top; }
th { background: #f2f2f2; }
td.num, th.num { text-align: right; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8rem; }
.card { border: 1px solid #ccc; padding: 0.5rem 0.9rem; min-width: 8rem; }
.card b { display: block; font-size: 1.2rem; }
.bad { color: #a00; }
.warn { color: #c80; }
code { background: #f6f6f6; padding: 0 0.2rem; }
svg { vertical-align: middle; }
footer { margin-top: 2rem; font-size: 0.75rem; color: #666; }
</style></head><body>
<h1>RDF-Analytics dashboard</h1>
<p>Generated {{.Now.Format "2006-01-02 15:04:05"}} UTC · graph: {{.Triples}} triples, {{.Terms}} terms · {{.Sessions}} active sessions</p>

<h2>Workload (RED)</h2>
<div class="cards">
<div class="card"><b>{{.Snap.Total}}</b>queries</div>
<div class="card"><b{{if gt .Snap.Errors 0}} class="bad"{{end}}>{{.Snap.Errors}}</b>errors ({{ms .ErrorPct}}%)</div>
<div class="card"><b>{{ms .Snap.P50Ms}} ms</b>p50 latency</div>
<div class="card"><b>{{ms .Snap.P95Ms}} ms</b>p95 latency</div>
<div class="card"><b>{{ms .FeedbackPct}}%</b>feedback hit rate ({{.Feedback.Hits}}/{{add .Feedback.Hits .Feedback.Misses}}, {{.Feedback.Fingerprints}} shapes)</div>
</div>

<h2>Overload resilience</h2>
{{with .Resilience}}<div class="cards">
{{if .CacheEnabled}}<div class="card"><b>{{ms .HitPct}}%</b>answer-cache served ({{.Hits}} hit / {{.Stale}} stale / {{.Collapsed}} collapsed / {{.Misses}} miss)</div>
<div class="card"><b>{{.Entries}}</b>cache entries ({{.KiB}} KiB, {{.Evictions}} evicted)</div>
{{else}}<div class="card"><b>off</b>answer cache (-cache-size 0)</div>{{end}}
<div class="card"><b{{if gt .Shed 0}} class="warn"{{end}}>{{.Shed}}</b>requests shed (503)</div>
<div class="card"><b>{{.Inflight}} / {{.Waiting}}</b>executing / queued</div>
<div class="card"><b{{if gt .BreakerOpens 0}} class="warn"{{end}}>{{.BreakerOpens}}</b>breaker opens</div>
<div class="card"><b{{if .Degraded}} class="bad"{{end}}>{{if .Degraded}}degraded{{else}}normal{{end}}</b>serving mode</div>
</div>{{end}}

<h2>Trends (sampler history, oldest → newest)</h2>
<table>
<tr><th>series</th><th>sparkline</th><th class="num">latest</th></tr>
<tr><td>HTTP throughput</td><td>{{spark .ReqRate}}</td><td class="num">{{last .ReqRate}} req/s</td></tr>
<tr><td>HTTP 5xx rate</td><td>{{spark .ErrRate}}</td><td class="num">{{last .ErrRate}} err/s</td></tr>
<tr><td>HTTP p95 (5m window)</td><td>{{spark .P95Ms}}</td><td class="num">{{last .P95Ms}} ms</td></tr>
<tr><td>Heap in use</td><td>{{spark .HeapMiB}}</td><td class="num">{{last .HeapMiB}} MiB</td></tr>
<tr><td>GC cycles</td><td>{{spark .GCRate}}</td><td class="num">{{last .GCRate}} /s</td></tr>
</table>

<h2>SLO error budgets</h2>
{{if .SLOs}}<table>
<tr><th>objective</th><th>kind</th><th class="num">target %</th><th class="num">events</th><th class="num">good</th><th class="num">burn 5m</th><th class="num">burn 1h</th><th>budget left</th><th>severity</th></tr>
{{range .SLOs}}<tr>
<td>{{with shapeFP .Name}}<a href="/api/traces?fingerprint={{.}}"><code>shape:{{.}}</code></a>{{else}}<code>{{.Name}}</code>{{end}}</td><td>{{.Kind}}{{if .ThresholdMs}} ≤ {{ms .ThresholdMs}} ms{{end}}</td>
<td class="num">{{pct .Target}}</td><td class="num">{{.Events}}</td><td class="num">{{.Good}}</td>
<td class="num">{{burn .Burn "fast_short"}}</td><td class="num">{{burn .Burn "fast_long"}}</td>
<td>{{gauge .BudgetRemaining}} {{pct .BudgetRemaining}}%</td>
<td{{if eq .Severity "page"}} class="bad"{{else if eq .Severity "warn"}} class="warn"{{end}}>{{if .Severity}}{{.Severity}}{{else}}ok{{end}}</td>
</tr>{{end}}
</table>{{else}}<p>No objectives configured (set -slo-availability / -slo-latency).</p>{{end}}

<h2>Alerts</h2>
{{if or .Alerts.Active .Alerts.Recent}}
{{if .Alerts.Active}}<table>
<tr><th>objective</th><th>severity</th><th>since</th><th class="num">burn fast</th><th class="num">burn slow</th><th>message</th></tr>
{{range .Alerts.Active}}<tr>
<td>{{with shapeFP .Objective}}<a href="/api/traces?fingerprint={{.}}"><code>shape:{{.}}</code></a>{{else}}<code>{{.Objective}}</code>{{end}}</td><td{{if eq .Severity "page"}} class="bad"{{else}} class="warn"{{end}}>{{.Severity}}</td>
<td>{{.Since.Format "15:04:05"}}</td><td class="num">{{ms .BurnFast}}</td><td class="num">{{ms .BurnSlow}}</td><td>{{.Message}}</td>
</tr>{{end}}
</table>{{else}}<p>No alert firing.</p>{{end}}
{{if .Alerts.Recent}}<h2>Alert timeline (newest first)</h2><table>
<tr><th>when</th><th>objective</th><th>severity</th><th>state</th><th>message</th></tr>
{{range .Alerts.Recent}}<tr>
<td>{{.At.Format "15:04:05"}}</td><td><code>{{.Objective}}</code></td>
<td{{if eq .Severity "page"}} class="bad"{{else}} class="warn"{{end}}>{{.Severity}}</td>
<td>{{.State}}</td><td>{{.Message}}</td>
</tr>{{end}}
</table>{{end}}
{{else}}<p>No alert has fired yet.</p>{{end}}

<h2>Slowest query fingerprints (top {{len .TopSlow}} by p95)</h2>
{{if .TopSlow}}<table>
<tr><th>fingerprint</th><th>kind</th><th>shape</th><th class="num">count</th><th class="num">p50 ms</th><th class="num">p95 ms</th><th class="num">worst ms</th><th class="num">avg rows</th><th class="num">max q-err</th><th>outcomes</th></tr>
{{range .TopSlow}}<tr>
<td><a href="/api/traces?fingerprint={{.ID}}"><code>{{.ID}}</code></a></td><td>{{.Kind}}</td><td><code>{{.Shape}}</code></td>
<td class="num">{{.Count}}</td><td class="num">{{ms .P50Ms}}</td><td class="num">{{ms .P95Ms}}</td>
<td class="num">{{ms .WorstMs}}</td><td class="num">{{ms .AvgRows}}</td><td class="num">{{qe .MaxQError}}</td>
<td>{{range $k, $v := .Outcomes}}{{$k}}={{$v}} {{end}}</td>
</tr>{{end}}
</table>{{else}}<p>No queries recorded yet.</p>{{end}}

<h2>Plan vs. actual (worst misestimated operator sites)</h2>
{{if .Misestimates}}<table>
<tr><th>operator</th><th>site</th><th class="num">est</th><th class="num">actual</th><th class="num">q-error</th><th class="num">seen</th><th>est. source</th></tr>
{{range .Misestimates}}<tr>
<td>{{.Op}}</td><td><code>{{.Label}}</code></td>
<td class="num">{{.Est}}</td><td class="num">{{.Actual}}</td><td class="num">{{qe .QError}}</td><td class="num">{{.Count}}</td>
<td>{{if .Feedback}}feedback{{else}}stats cache{{end}}</td>
</tr>{{end}}
</table>
<p>q-error = max(est/actual, actual/est); estimates come from the cardinality-stats cache the planner ordered joins with, or from the execution-feedback store once a fingerprint has run before (marked “feedback”).</p>
{{else}}<p>No profiled operators yet.</p>{{end}}

<h2>Recent queries</h2>
{{if .Recent}}<table>
<tr><th>when</th><th>kind</th><th>fingerprint</th><th class="num">ms</th><th class="num">rows</th><th>outcome</th><th>query</th></tr>
{{range .Recent}}<tr>
<td>{{.When.Format "15:04:05"}}</td><td>{{.Kind}}</td><td><code>{{.FingerprintID}}</code></td>
<td class="num">{{durms .Duration}}</td><td class="num">{{.Rows}}</td>
<td{{if ne .Outcome "ok"}} class="bad"{{end}}>{{.Outcome}}</td><td><code>{{.Query}}</code></td>
</tr>{{end}}
</table>{{else}}<p>No queries recorded yet.</p>{{end}}

<h2>Retained traces (tail-sampled, newest first)</h2>
<div class="cards">
<div class="card"><b>{{.TraceStats.Retained}}</b>retained{{if .TraceStats.ByReason}} ({{range $k, $v := .TraceStats.ByReason}}{{$k}}={{$v}} {{end}}){{end}}</div>
<div class="card"><b>{{.TraceStats.Bytes}}</b>bytes held</div>
<div class="card"><b>{{.TraceStats.DroppedSampled}}</b>sampled out</div>
<div class="card"><b{{if gt .TraceStats.DroppedEvicted 0}} class="warn"{{end}}>{{.TraceStats.DroppedEvicted}}</b>evicted</div>
</div>
{{if .Traces}}<table>
<tr><th>trace</th><th>kind</th><th>fingerprint</th><th>reason</th><th class="num">ms</th><th>outcome</th><th>cache</th><th>query</th></tr>
{{range .Traces}}<tr>
<td><a href="/api/traces/{{.ID}}"><code>{{.ID}}</code></a></td><td>{{.Kind}}</td>
<td>{{if .FingerprintID}}<a href="/api/traces?fingerprint={{.FingerprintID}}"><code>{{.FingerprintID}}</code></a>{{end}}</td>
<td>{{.Reason}}</td><td class="num">{{ms .DurationMS}}</td>
<td{{if ne .Outcome "ok"}} class="bad"{{end}}>{{.Outcome}}</td><td>{{.Cache}}</td><td><code>{{trunc .Query}}</code></td>
</tr>{{end}}
</table>
<p>Errors, timeouts and budget aborts are retained at 100%; the rest are each fingerprint's slowest runs, p95 outliers, and a residual sample. Search: <a href="/api/traces">/api/traces</a>.</p>
{{else}}<p>No trace retained yet.</p>{{end}}

<footer>Raw data: <a href="/api/workload">/api/workload</a> · <a href="/api/timeseries">/api/timeseries</a> · <a href="/api/alerts">/api/alerts</a> · <a href="/api/traces">/api/traces</a> · <a href="/api/trace">/api/trace</a> · <a href="/metrics">/metrics</a></footer>
</body></html>
`
