package server

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
)

// The built-in observability dashboard: one self-contained HTML page
// rendered server-side with html/template — inline CSS, no scripts, no
// external assets — so it works from a terminal browser on an air-gapped
// box. It shows the RED view of the workload (rate, errors, duration
// quantiles), the top-k slowest query fingerprints with their worst-case
// run, the plan-vs-actual misestimation table fed by the operator profiler,
// and the most recent queries.

// dashboardTopK is how many slow fingerprints and misestimates the page
// shows; the full data is always available from GET /api/workload.
const dashboardTopK = 10

type dashboardData struct {
	Now          time.Time
	Triples      int
	Terms        int
	Sessions     int
	Snap         obs.WorkloadSnapshot
	ErrorPct     float64
	TopSlow      []obs.FingerprintSummary
	Misestimates []obs.OpEstimate
	Recent       []obs.QueryRecord
	// Feedback is the planner feedback store's counters; FeedbackPct is the
	// hit rate hits/(hits+misses) in percent (0 when nothing was looked up).
	Feedback    sparql.FeedbackStats
	FeedbackPct float64
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	snap := s.workload.Snapshot()
	data := dashboardData{
		Now:          time.Now().UTC(),
		Snap:         snap,
		TopSlow:      s.workload.TopSlow(dashboardTopK),
		Misestimates: snap.Misestimates,
		Recent:       snap.Recent,
		Feedback:     s.feedback.Stats(),
	}
	if n := data.Feedback.Hits + data.Feedback.Misses; n > 0 {
		data.FeedbackPct = 100 * float64(data.Feedback.Hits) / float64(n)
	}
	if len(data.Misestimates) > dashboardTopK {
		data.Misestimates = data.Misestimates[:dashboardTopK]
	}
	if len(data.Recent) > dashboardTopK {
		data.Recent = data.Recent[:dashboardTopK]
	}
	if snap.Total > 0 {
		data.ErrorPct = 100 * float64(snap.Errors) / float64(snap.Total)
	}
	s.mu.Lock()
	st := s.graph.Stats()
	data.Sessions = len(s.sessions)
	s.mu.Unlock()
	data.Triples, data.Terms = st.Triples, st.Terms
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

var dashboardTmpl = template.Must(template.New("dashboard").Funcs(template.FuncMap{
	"ms": func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"qe": func(v float64) string {
		if v == 0 {
			return "–"
		}
		return fmt.Sprintf("%.1f", v)
	},
	"durms": func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
	},
	"add": func(a, b uint64) uint64 { return a + b },
}).Parse(dashboardHTML))

const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>RDF-Analytics dashboard</title>
<style>
body { font-family: ui-monospace, monospace; max-width: 72rem; margin: 1.5rem auto; padding: 0 1rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.5rem; text-align: left; vertical-align: top; }
th { background: #f2f2f2; }
td.num, th.num { text-align: right; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8rem; }
.card { border: 1px solid #ccc; padding: 0.5rem 0.9rem; min-width: 8rem; }
.card b { display: block; font-size: 1.2rem; }
.bad { color: #a00; }
code { background: #f6f6f6; padding: 0 0.2rem; }
footer { margin-top: 2rem; font-size: 0.75rem; color: #666; }
</style></head><body>
<h1>RDF-Analytics dashboard</h1>
<p>Generated {{.Now.Format "2006-01-02 15:04:05"}} UTC · graph: {{.Triples}} triples, {{.Terms}} terms · {{.Sessions}} active sessions</p>

<h2>Workload (RED)</h2>
<div class="cards">
<div class="card"><b>{{.Snap.Total}}</b>queries</div>
<div class="card"><b{{if gt .Snap.Errors 0}} class="bad"{{end}}>{{.Snap.Errors}}</b>errors ({{ms .ErrorPct}}%)</div>
<div class="card"><b>{{ms .Snap.P50Ms}} ms</b>p50 latency</div>
<div class="card"><b>{{ms .Snap.P95Ms}} ms</b>p95 latency</div>
<div class="card"><b>{{ms .FeedbackPct}}%</b>feedback hit rate ({{.Feedback.Hits}}/{{add .Feedback.Hits .Feedback.Misses}}, {{.Feedback.Fingerprints}} shapes)</div>
</div>

<h2>Slowest query fingerprints (top {{len .TopSlow}} by p95)</h2>
{{if .TopSlow}}<table>
<tr><th>fingerprint</th><th>kind</th><th>shape</th><th class="num">count</th><th class="num">p50 ms</th><th class="num">p95 ms</th><th class="num">worst ms</th><th class="num">avg rows</th><th class="num">max q-err</th><th>outcomes</th></tr>
{{range .TopSlow}}<tr>
<td><code>{{.ID}}</code></td><td>{{.Kind}}</td><td><code>{{.Shape}}</code></td>
<td class="num">{{.Count}}</td><td class="num">{{ms .P50Ms}}</td><td class="num">{{ms .P95Ms}}</td>
<td class="num">{{ms .WorstMs}}</td><td class="num">{{ms .AvgRows}}</td><td class="num">{{qe .MaxQError}}</td>
<td>{{range $k, $v := .Outcomes}}{{$k}}={{$v}} {{end}}</td>
</tr>{{end}}
</table>{{else}}<p>No queries recorded yet.</p>{{end}}

<h2>Plan vs. actual (worst misestimated operator sites)</h2>
{{if .Misestimates}}<table>
<tr><th>operator</th><th>site</th><th class="num">est</th><th class="num">actual</th><th class="num">q-error</th><th class="num">seen</th><th>est. source</th></tr>
{{range .Misestimates}}<tr>
<td>{{.Op}}</td><td><code>{{.Label}}</code></td>
<td class="num">{{.Est}}</td><td class="num">{{.Actual}}</td><td class="num">{{qe .QError}}</td><td class="num">{{.Count}}</td>
<td>{{if .Feedback}}feedback{{else}}stats cache{{end}}</td>
</tr>{{end}}
</table>
<p>q-error = max(est/actual, actual/est); estimates come from the cardinality-stats cache the planner ordered joins with, or from the execution-feedback store once a fingerprint has run before (marked “feedback”).</p>
{{else}}<p>No profiled operators yet.</p>{{end}}

<h2>Recent queries</h2>
{{if .Recent}}<table>
<tr><th>when</th><th>kind</th><th>fingerprint</th><th class="num">ms</th><th class="num">rows</th><th>outcome</th><th>query</th></tr>
{{range .Recent}}<tr>
<td>{{.When.Format "15:04:05"}}</td><td>{{.Kind}}</td><td><code>{{.FingerprintID}}</code></td>
<td class="num">{{durms .Duration}}</td><td class="num">{{.Rows}}</td>
<td{{if ne .Outcome "ok"}} class="bad"{{end}}>{{.Outcome}}</td><td><code>{{.Query}}</code></td>
</tr>{{end}}
</table>{{else}}<p>No queries recorded yet.</p>{{end}}

<footer>Raw data: <a href="/api/workload">/api/workload</a> · <a href="/api/trace">/api/trace</a> · <a href="/metrics">/metrics</a></footer>
</body></html>
`
