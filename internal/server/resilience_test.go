package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfanalytics/internal/conformance"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// resilienceConfig is the baseline overload-resilience test config: cache,
// gate and breakers all armed.
func resilienceConfig() Config {
	return Config{
		CacheBytes:    1 << 20,
		MaxConcurrent: 8,
		QueueDepth:    64,
		StaleWindow:   time.Hour,
		QueryTimeout:  10 * time.Second,
	}
}

// doSparql runs one GET /sparql through the full middleware stack in-process
// and returns status, X-Cache, Retry-After and body.
func doSparql(s *Server, query string) (int, string, string, []byte) {
	req := httptest.NewRequest("GET", "/sparql?query="+url.QueryEscape(query), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("X-Cache"), rec.Header().Get("Retry-After"), rec.Body.Bytes()
}

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func laptopQuery() string {
	return `SELECT ?s WHERE { ?s a <` + datagen.ExampleNS + `Laptop> }`
}

// TestHerdCollapse is the headline acceptance scenario: 64 concurrent
// identical queries against a cold cache execute the engine exactly once —
// one leader fills, 63 followers collapse onto it — and the herd's responses
// are byte-identical.
func TestHerdCollapse(t *testing.T) {
	s, _ := newTestServer(t, resilienceConfig())
	if err := fault.Configure("server.sparql.exec=delay:600ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	fills0, collapsed0, miss0 := cacheFills.Value(), cacheCollapsed.Value(), cacheMiss.Value()
	const herd = 64
	q := laptopQuery()
	type outcome struct {
		code  int
		cache string
		body  string
	}
	results := make([]outcome, herd)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			code, xc, _, body := doSparql(s, q)
			results[i] = outcome{code, xc, string(body)}
		}(i)
	}
	close(start)
	wg.Wait()

	counts := map[string]int{}
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d = %d %s", i, r.code, r.body)
		}
		if r.body != results[0].body {
			t.Fatalf("request %d body differs from request 0", i)
		}
		counts[r.cache]++
	}
	// The barrier guarantees every request arrives while the leader is still
	// inside the 600ms fault delay, so the split is exact.
	if counts["miss"] != 1 || counts["collapsed"] != herd-1 {
		t.Errorf("X-Cache split = %v, want 1 miss + %d collapsed", counts, herd-1)
	}
	if got := fault.Hits("server.sparql.exec"); got != 1 {
		t.Errorf("engine executed %d times for the herd, want exactly 1", got)
	}
	if d := cacheFills.Value() - fills0; d != 1 {
		t.Errorf("cache fills = %d, want 1", d)
	}
	if d := cacheCollapsed.Value() - collapsed0; d != herd-1 {
		t.Errorf("collapsed = %d, want %d", d, herd-1)
	}
	if d := cacheMiss.Value() - miss0; d != 1 {
		t.Errorf("misses = %d, want 1", d)
	}

	// The herd left a warm entry behind: the next request is a fresh hit and
	// still never touches the engine.
	code, xc, _, body := doSparql(s, q)
	if code != http.StatusOK || xc != "hit" || string(body) != results[0].body {
		t.Errorf("post-herd request = %d X-Cache=%q, want 200 hit with identical body", code, xc)
	}
	if got := fault.Hits("server.sparql.exec"); got != 1 {
		t.Errorf("engine ran again on a warm cache (%d hits)", got)
	}
}

// TestQueueOverflowShedsWhileCachedServes fills the one execution slot and
// the one queue position with slow distinct shapes, then checks (a) the next
// uncached arrival is shed with a structured 503 + Retry-After and (b) a
// cached fingerprint keeps serving hits throughout the overload.
func TestQueueOverflowShedsWhileCachedServes(t *testing.T) {
	cfg := resilienceConfig()
	cfg.MaxConcurrent, cfg.QueueDepth = 1, 1
	s, _ := newTestServer(t, cfg)

	qCached := laptopQuery()
	qSlow := `SELECT ?s ?m WHERE { ?s <` + datagen.ExampleNS + `manufacturer> ?m }`
	qQueued := `SELECT ?s ?p WHERE { ?s <` + datagen.ExampleNS + `price> ?p }`
	qShed := `SELECT ?s ?d WHERE { ?s <` + datagen.ExampleNS + `releaseDate> ?d }`

	// Prime the cache before arming the fault.
	if code, xc, _, _ := doSparql(s, qCached); code != http.StatusOK || xc != "miss" {
		t.Fatalf("prime = %d %q", code, xc)
	}
	if err := fault.Configure("server.sparql.exec=delay:600ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	var wg sync.WaitGroup
	launch := func(q string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, _, _, body := doSparql(s, q); code != http.StatusOK {
				t.Errorf("background query = %d %s", code, body)
			}
		}()
	}
	launch(qSlow)
	waitUntil(t, "slot occupied", func() bool { return s.gate.Inflight() == 1 })
	launch(qQueued)
	waitUntil(t, "queue occupied", func() bool { return s.gate.Waiting() == 1 })

	// Queue full: the next distinct shape is shed, structured.
	code, _, retryAfter, body := doSparql(s, qShed)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow = %d %s, want 503", code, body)
	}
	if retryAfter == "" {
		t.Error("shed response missing Retry-After")
	}
	var shed map[string]string
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("shed body not JSON: %s", body)
	}
	if shed["reason"] != "queue_full" {
		t.Errorf("shed reason = %q, want queue_full (%v)", shed["reason"], shed)
	}

	// The cached fingerprint is immune to the overload.
	if code, xc, _, _ := doSparql(s, qCached); code != http.StatusOK || xc != "hit" {
		t.Errorf("cached query during overload = %d %q, want 200 hit", code, xc)
	}
	wg.Wait() // slow + queued both still complete
}

// TestDegradedStaleServing drives a paging latency SLO (the chaos loop from
// the health tests), then checks the three degraded-mode behaviors: stale
// cache entries of an older graph version are served within the window,
// known-expensive uncached shapes are shed, and cheap unknown shapes still
// execute while capacity remains.
func TestDegradedStaleServing(t *testing.T) {
	cfg := resilienceConfig()
	cfg.SLO = chaosSLOConfig().SLO
	s, ts := newTestServer(t, cfg)

	// Prime the hot fingerprint (graph version v1).
	qHot := laptopQuery()
	code, xc, _, hotBody := doSparql(s, qHot)
	if code != http.StatusOK || xc != "miss" {
		t.Fatalf("prime = %d %q", code, xc)
	}

	// Teach the breaker that the "manufacturer = const" shape is expensive:
	// one 400ms execution sets its cost EWMA well above the 250ms shed cutoff.
	if err := fault.Configure("server.sparql.exec=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	qExpensive := func(m string) string {
		return `SELECT ?s WHERE { ?s <` + datagen.ExampleNS + `manufacturer> "` + m + `" }`
	}
	if code, _, _, body := doSparql(s, qExpensive("alpha")); code != http.StatusOK {
		t.Fatalf("expensive prime = %d %s", code, body)
	}
	fault.Reset()

	// Mutate the graph: the hot entry is now one version stale.
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`PREFIX ex: <` + datagen.ExampleNS + `> INSERT DATA { ex:staleProbe a ex:Laptop . }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d", resp.StatusCode)
	}

	// Flip the latency SLO to page severity via the chaos fault site.
	if err := fault.Configure("server.handler.slow=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	s.sampler.Tick(t0)
	for i := 0; i < 8; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/api/state", nil)
		req.Header.Set("X-Fault", "slow")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	s.sampler.Tick(t0.Add(10 * time.Second))
	fault.Reset()
	if !s.Degraded() {
		t.Fatal("page alert did not flip degraded mode")
	}

	// (a) Stale entry served within the window, byte-identical to the primed
	// answer even though the graph has since changed.
	code, xc, _, body := doSparql(s, qHot)
	if code != http.StatusOK || xc != "stale" {
		t.Fatalf("degraded hot query = %d X-Cache=%q, want 200 stale", code, xc)
	}
	if string(body) != string(hotBody) {
		t.Error("stale serve does not match the cached answer")
	}

	// (b) Same expensive shape, different constant: uncached, learned EWMA
	// over the cutoff → shed.
	code, _, retryAfter, body := doSparql(s, qExpensive("beta"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expensive uncached shape while degraded = %d %s, want 503", code, body)
	}
	var shed map[string]string
	json.Unmarshal(body, &shed)
	if shed["reason"] != "degraded" || retryAfter == "" {
		t.Errorf("shed = reason %q Retry-After %q, want degraded + hint", shed["reason"], retryAfter)
	}

	// (c) A cheap never-seen shape still executes: degraded mode sheds by
	// learned cost, not indiscriminately, while slots are free.
	qCheap := `SELECT ?s ?u WHERE { ?s <` + datagen.ExampleNS + `USBPorts> ?u } LIMIT 1`
	if code, xc, _, body := doSparql(s, qCheap); code != http.StatusOK || xc != "miss" {
		t.Errorf("cheap unknown shape while degraded = %d %q %s, want 200 miss", code, xc, body)
	}
}

// TestDrainDuringQueuedAdmission covers the shutdown race: a request already
// admitted to the wait queue when the drain flag flips is neither lost nor
// double-executed, while new arrivals stop queueing immediately.
func TestDrainDuringQueuedAdmission(t *testing.T) {
	cfg := resilienceConfig()
	cfg.MaxConcurrent, cfg.QueueDepth = 1, 4
	s, _ := newTestServer(t, cfg)
	if err := fault.Configure("server.sparql.exec=delay:600ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	qSlow := `SELECT ?s ?m WHERE { ?s <` + datagen.ExampleNS + `manufacturer> ?m }`
	qQueued := `SELECT ?s ?p WHERE { ?s <` + datagen.ExampleNS + `price> ?p }`
	qLate := `SELECT ?s ?d WHERE { ?s <` + datagen.ExampleNS + `releaseDate> ?d }`

	hits0 := fault.Hits("server.sparql.exec")
	var wg sync.WaitGroup
	codes := make([]int, 2)
	launch := func(i int, q string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], _, _, _ = doSparql(s, q)
		}()
	}
	launch(0, qSlow)
	waitUntil(t, "slot occupied", func() bool { return s.gate.Inflight() == 1 })
	launch(1, qQueued)
	waitUntil(t, "queue occupied", func() bool { return s.gate.Waiting() == 1 })

	s.SetDraining(true)
	defer s.SetDraining(false)
	if !s.Degraded() {
		t.Fatal("drain flag did not flip degraded mode")
	}

	// New arrival while draining: rejected rather than queued.
	code, _, _, body := doSparql(s, qLate)
	var shed map[string]string
	json.Unmarshal(body, &shed)
	if code != http.StatusServiceUnavailable || shed["reason"] != "degraded" {
		t.Errorf("arrival during drain = %d reason %q, want 503 degraded", code, shed["reason"])
	}

	// The in-flight and the already-queued request both complete normally…
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Errorf("drained requests = %v, want both 200", codes)
	}
	// …and each executed exactly once.
	if d := fault.Hits("server.sparql.exec") - hits0; d != 2 {
		t.Errorf("engine executions across drain = %d, want exactly 2", d)
	}
}

// TestCacheKeyConstantSafety is the satellite regression: queries sharing a
// structural fingerprint but differing in a constant must never share a
// cache entry.
func TestCacheKeyConstantSafety(t *testing.T) {
	s, _ := newTestServer(t, resilienceConfig())

	// Same shape, different literal constant: the second request must not be
	// served the first one's answer.
	qA := `SELECT ?s WHERE { ?s <` + datagen.ExampleNS + `manufacturer> "ConstA" }`
	qB := `SELECT ?s WHERE { ?s <` + datagen.ExampleNS + `manufacturer> "ConstB" }`
	pa, err := sparql.Parse(qA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sparql.Parse(qB)
	if err != nil {
		t.Fatal(err)
	}
	if sparql.Fingerprint(pa) != sparql.Fingerprint(pb) {
		t.Fatalf("test premise broken: constants should not change the fingerprint")
	}
	if code, xc, _, _ := doSparql(s, qA); code != http.StatusOK || xc != "miss" {
		t.Fatalf("qA = %d %q", code, xc)
	}
	if code, xc, _, _ := doSparql(s, qB); code != http.StatusOK || xc != "miss" {
		t.Errorf("qB after qA = %d X-Cache=%q: same-fingerprint constants shared an entry", code, xc)
	}

	// Different LIMIT constants: distinct entries with distinct bodies, each
	// independently hittable.
	q1 := laptopQuery() + ` LIMIT 1`
	q2 := laptopQuery() + ` LIMIT 2`
	_, _, _, body1 := doSparql(s, q1)
	_, _, _, body2 := doSparql(s, q2)
	if string(body1) == string(body2) {
		t.Error("LIMIT 1 and LIMIT 2 returned the same body")
	}
	if _, xc, _, again1 := doSparql(s, q1); xc != "hit" || string(again1) != string(body1) {
		t.Errorf("q1 re-request = %q, want hit with original body", xc)
	}
	if _, xc, _, again2 := doSparql(s, q2); xc != "hit" || string(again2) != string(body2) {
		t.Errorf("q2 re-request = %q, want hit with original body", xc)
	}
}

// TestMutationInvalidatesAnswerCache checks graph-version keying: an update
// makes every prior entry unreachable for fresh lookups, and the re-executed
// answer reflects the mutation.
func TestMutationInvalidatesAnswerCache(t *testing.T) {
	s, ts := newTestServer(t, resilienceConfig())
	q := `SELECT (COUNT(?s) AS ?n) WHERE { ?s a <` + datagen.ExampleNS + `Laptop> }`

	_, _, _, before := doSparql(s, q)
	if _, xc, _, _ := doSparql(s, q); xc != "hit" {
		t.Fatalf("warm lookup = %q, want hit", xc)
	}
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`PREFIX ex: <` + datagen.ExampleNS + `> INSERT DATA { ex:freshLaptop a ex:Laptop . }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	code, xc, _, after := doSparql(s, q)
	if code != http.StatusOK || xc != "miss" {
		t.Fatalf("post-update lookup = %d %q, want 200 miss", code, xc)
	}
	if string(after) == string(before) {
		t.Error("post-update answer identical to pre-update answer")
	}
	if _, xc, _, _ := doSparql(s, q); xc != "hit" {
		t.Errorf("refilled entry not hittable: %q", xc)
	}
}

// TestBreakerOpensOverHTTP aborts the same fingerprint repeatedly via
// timeout injection and checks the circuit opens: subsequent requests for
// that shape are rejected up front with 503 + Retry-After.
func TestBreakerOpensOverHTTP(t *testing.T) {
	cfg := Config{
		CacheBytes:       1 << 20,
		QueryTimeout:     50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stay open for the whole test
	}
	s, _ := newTestServer(t, cfg)
	if err := fault.Configure("server.sparql.exec=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	q := func(m string) string {
		return `SELECT ?s WHERE { ?s <` + datagen.ExampleNS + `manufacturer> "` + m + `" }`
	}
	rejected0 := breakerRejected.Value()
	for i, m := range []string{"t1", "t2"} {
		if code, _, _, _ := doSparql(s, q(m)); code == http.StatusOK {
			t.Fatalf("abort %d unexpectedly succeeded", i)
		}
	}
	pq, err := sparql.Parse(q("t3"))
	if err != nil {
		t.Fatal(err)
	}
	fpID := sparql.FingerprintID(sparql.Fingerprint(pq))
	if st := s.breakers.State(fpID); st != "open" {
		t.Fatalf("breaker state after %d aborts = %q, want open", 2, st)
	}

	code, _, retryAfter, body := doSparql(s, q("t3"))
	if code != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("open-circuit request = %d Retry-After %q %s, want 503 + hint", code, retryAfter, body)
	}
	var shed map[string]string
	json.Unmarshal(body, &shed)
	if shed["reason"] != "breaker_open" {
		t.Errorf("reason = %q, want breaker_open", shed["reason"])
	}
	if d := breakerRejected.Value() - rejected0; d != 1 {
		t.Errorf("breaker rejections = %d, want 1", d)
	}
	// A different fingerprint is unaffected.
	fault.Reset()
	if code, _, _, _ := doSparql(s, laptopQuery()); code != http.StatusOK {
		t.Errorf("unrelated shape also rejected: %d", code)
	}
}

// TestResilienceDifferential is the satellite differential oracle: over the
// whole SELECT/ASK conformance corpus, every combination of {cache on/off} ×
// {singleflight on/off} — and cold vs warm cache — returns byte-identical
// /sparql responses.
func TestResilienceDifferential(t *testing.T) {
	cases, err := conformance.LoadCases(filepath.Join("..", "conformance", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{NoCollapse: true}},
		{"collapse", Config{}},
		{"cache", Config{CacheBytes: 1 << 20, NoCollapse: true}},
		{"cache+collapse", Config{CacheBytes: 1 << 20}},
	}
	ran := 0
	for _, c := range cases {
		if c.Expect == "expect.ttl" {
			continue // CONSTRUCT: uncached bypass path, covered by conformance itself
		}
		data, err := os.ReadFile(filepath.Join(c.Dir, "data.ttl"))
		if err != nil {
			t.Fatal(err)
		}
		queryBytes, err := os.ReadFile(filepath.Join(c.Dir, "query.rq"))
		if err != nil {
			t.Fatal(err)
		}
		query := string(queryBytes)

		var refBody string
		var refCode int
		for i, cc := range configs {
			g, err := rdf.LoadTurtleString(string(data))
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Category, c.Name, err)
			}
			s := NewWithConfig(g, "", cc.cfg)
			// Twice: the second request exercises the warm path (a fresh
			// cache hit on the caching configs).
			for pass := 0; pass < 2; pass++ {
				code, _, _, body := doSparql(s, query)
				if i == 0 && pass == 0 {
					refCode, refBody = code, string(body)
					continue
				}
				if code != refCode || string(body) != refBody {
					t.Errorf("%s/%s: config %s pass %d diverges (code %d vs %d)\n ref: %s\n got: %s",
						c.Category, c.Name, cc.name, pass, code, refCode, refBody, body)
				}
			}
			s.Close()
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("differential oracle matched zero corpus cases")
	}
	t.Logf("differential oracle over %d corpus cases × %d configs × 2 passes", ran, len(configs))
}

// TestCachedHitObservability pins the satellite requirement that cache hits
// stay fully observable: X-Request-ID is stamped, the per-endpoint counter
// moves, and the workload profiler sees the serve.
func TestCachedHitObservability(t *testing.T) {
	s, ts := newTestServer(t, resilienceConfig())
	q := laptopQuery()
	doSparql(s, q) // fill

	req, _ := http.NewRequest("GET", ts.URL+"/sparql?query="+url.QueryEscape(q), nil)
	req.Header.Set("X-Request-ID", "cachehit-corr-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if resp.Header.Get("X-Request-ID") != "cachehit-corr-1" {
		t.Errorf("cache hit dropped X-Request-ID: %q", resp.Header.Get("X-Request-ID"))
	}

	// The workload profiler counted both the miss and the hit.
	code, body := getStatus(t, ts.URL+"/api/workload")
	if code != http.StatusOK {
		t.Fatalf("workload = %d", code)
	}
	var snap obs.WorkloadSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total < 2 {
		t.Errorf("workload saw %d serves, want >= 2 (miss + cached hit)", snap.Total)
	}
}

// TestDashboardResilienceCard checks the dashboard renders the overload
// card with live numbers.
func TestDashboardResilienceCard(t *testing.T) {
	s, ts := newTestServer(t, resilienceConfig())
	doSparql(s, laptopQuery())
	doSparql(s, laptopQuery())
	code, body := getStatus(t, ts.URL+"/debug/dashboard")
	if code != http.StatusOK {
		t.Fatalf("dashboard = %d", code)
	}
	for _, want := range []string{"Overload resilience", "answer-cache served", "serving mode"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
