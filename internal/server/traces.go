// The trace search API over the tail-sampling retention store
// (obs.TraceStore): GET /api/traces searches retained traces by
// fingerprint, duration, outcome, retention reason, kind and recency;
// GET /api/traces/{id} returns one trace's full span waterfall and
// operator profile. This file also owns the glue that feeds the store —
// the per-layer retention offers share traceOutcome and the session trace
// sink lives here.
//
// The drill-down this enables, with no scripting anywhere: an SLO alert
// names an offending "shape:<fingerprint>" objective → /api/traces
// ?fingerprint=<fp> lists the retained exemplar executions of that shape
// (the errors and the slowest ones first, because those are what the
// sampler keeps) → /api/traces/{id} shows where the time went, span by
// span and operator by operator.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
)

// traceIDOf returns the trace ID the middleware stamped on the request.
func traceIDOf(r *http.Request) string {
	return r.Header.Get("X-Trace-ID")
}

// traceOutcome maps an execution error onto the retention outcome
// taxonomy: "ok" for nil, otherwise the abort reason ("timeout",
// "cancelled", "budget", …) with "error" as the fallback, plus the
// message to retain.
func traceOutcome(err error) (outcome, msg string) {
	if err == nil {
		return "ok", ""
	}
	outcome = sparql.AbortReason(err)
	if outcome == "" {
		outcome = "error"
	}
	return outcome, err.Error()
}

// retainAnalytics is the session trace sink: every completed
// RunAnalyticsCtx — cache hit, cube roll-up or full execution — is
// offered for retention. It runs while the caller holds s.mu, so it must
// only touch the trace store (which has its own lock).
func (s *Server) retainAnalytics(ev core.TraceEvent) {
	// Analytic queries fingerprint by the generated SPARQL when available
	// (it carries the full shape); the HIFUN text stands in on failure.
	shape := "analytics " + ev.HIFUN
	if ev.Err == nil && ev.SPARQL != "" {
		shape = sparql.FingerprintQuery(ev.SPARQL)
	}
	outcome, msg := traceOutcome(ev.Err)
	var prof any
	if exp := ev.Profile.Export(); exp != nil {
		prof = exp
	}
	s.traces.Offer(obs.TraceCandidate{
		Trace:         ev.Trace,
		Profile:       prof,
		Kind:          "analytics",
		FingerprintID: sparql.FingerprintID(shape),
		Shape:         shape,
		Query:         ev.HIFUN,
		RequestID:     ev.RequestID,
		Duration:      ev.Duration,
		Outcome:       outcome,
		Cache:         ev.Source,
		Err:           msg,
	})
}

// tracesJSON is the GET /api/traces payload: the matching summaries plus
// the store's retention/drop accounting, so a consumer can tell an empty
// result from a disabled or saturated store.
type tracesJSON struct {
	Traces []obs.TraceSummary  `json:"traces"`
	Stats  obs.TraceStoreStats `json:"stats"`
}

// handleTraces searches retained traces. Query parameters:
//
//	fingerprint — exact fingerprint ID, or substring of the shape text
//	min_ms      — minimum duration in milliseconds (float)
//	outcome     — "ok", "timeout", "budget", "cancelled", "error"
//	reason      — retention reason: "error", "slowest", "outlier", "residual"
//	kind        — "sparql", "analytics", "update", "checkpoint"
//	since       — RFC 3339 lower bound on retention time
//	limit       — result cap (default 50, max 500)
//
// Results are newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusConflict, errors.New("trace retention is disabled"))
		return
	}
	q := r.URL.Query()
	tq := obs.TraceQuery{
		Fingerprint: q.Get("fingerprint"),
		Outcome:     q.Get("outcome"),
		Reason:      q.Get("reason"),
		Kind:        q.Get("kind"),
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q (want non-negative milliseconds)", v))
			return
		}
		tq.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since %q (want RFC 3339)", v))
			return
		}
		tq.Since = t
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q (want a positive integer)", v))
			return
		}
		tq.Limit = n
	}
	out := tracesJSON{Traces: s.traces.Search(tq), Stats: s.traces.Stats()}
	if out.Traces == nil {
		out.Traces = []obs.TraceSummary{}
	}
	writeJSON(w, out)
}

// handleTraceByID serves one retained trace in full: summary, span
// waterfall, operator profile, and the serve counts accumulated while its
// cached answer was replayed.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusConflict, errors.New("trace retention is disabled"))
		return
	}
	id := r.PathValue("id")
	d, ok := s.traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("no retained trace %q (never retained, or evicted since)", id))
		return
	}
	writeJSON(w, d)
}
