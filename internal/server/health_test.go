package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
)

// newTestServer builds a server with cfg over the small products graph and
// returns both the raw *Server (for SetDraining / sampler ticks) and an
// httptest wrapper.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewWithConfig(g, datagen.ExampleNS, cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHealthProbesDrainFlip checks /healthz and /readyz answer 200 while
// serving and flip to 503 the moment the drain flag is set.
func TestHealthProbesDrainFlip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, p := range []string{"/healthz", "/readyz"} {
		if code, body := getStatus(t, ts.URL+p); code != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Errorf("GET %s = %d %s, want 200 ok", p, code, body)
		}
	}
	s.SetDraining(true)
	for _, p := range []string{"/healthz", "/readyz"} {
		if code, body := getStatus(t, ts.URL+p); code != http.StatusServiceUnavailable ||
			!strings.Contains(string(body), "draining") {
			t.Errorf("draining GET %s = %d %s, want 503 draining", p, code, body)
		}
	}
	s.SetDraining(false)
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Error("healthz did not recover after drain cleared")
	}
}

// TestRunListenerSetsDraining checks graceful shutdown flips the handler's
// drain flag before the listener drains, so balancer probes fail fast.
func TestRunListenerSetsDraining(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := New(g, datagen.ExampleNS)
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- RunListener(ctx, ln, s, time.Second) }()

	// Wait until the listener serves, then trigger shutdown.
	base := "http://" + ln.Addr().String()
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Draining() {
		t.Fatal("draining before shutdown began")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("RunListener: %v", err)
	}
	if !s.Draining() {
		t.Error("RunListener did not set the drain flag during shutdown")
	}
}

// TestRequestIDMiddleware checks ids are minted, well-formed client ids are
// honoured, malformed ones replaced, and error JSON echoes the id.
func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/state", nil)
	req.Header.Set("X-Request-ID", "client-id_1.2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "client-id_1.2" {
		t.Errorf("client id not honoured: %q", id)
	}

	for _, bad := range []string{strings.Repeat("x", 100), "bad id!", "inject{}"} {
		req, _ = http.NewRequest("GET", ts.URL+"/api/state", nil)
		req.Header.Set("X-Request-ID", bad)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if id := resp.Header.Get("X-Request-ID"); id == bad || len(id) != 16 {
			t.Errorf("malformed client id %q not replaced: %q", bad, id)
		}
	}

	// Error JSON carries the request id for support correlation.
	req, _ = http.NewRequest("GET", ts.URL+"/sparql?query=%28broken", nil)
	req.Header.Set("X-Request-ID", "err-corr-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken query = %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["request_id"] != "err-corr-42" {
		t.Errorf("error body request_id = %q, want err-corr-42 (%v)", out["request_id"], out)
	}
	if out["error"] == "" {
		t.Error("error body missing message")
	}
}

// TestTimeseriesEndpoint ticks the passive sampler and checks the export
// contains scraped series with derived rates.
func TestTimeseriesEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	now := time.Now()
	s.sampler.Tick(now)
	getStatus(t, ts.URL+"/api/state") // traffic between ticks
	s.sampler.Tick(now.Add(10 * time.Second))

	code, body := getStatus(t, ts.URL+"/api/timeseries?series=rdfa_http_requests_total")
	if code != http.StatusOK {
		t.Fatalf("timeseries = %d", code)
	}
	var out obs.TimeseriesJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) == 0 {
		t.Fatal("no request-counter series exported")
	}
	for _, sj := range out.Series {
		if !strings.Contains(sj.Key, "rdfa_http_requests_total") {
			t.Errorf("filter leaked series %q", sj.Key)
		}
		if sj.Kind != "counter" {
			t.Errorf("series %q kind = %q", sj.Key, sj.Kind)
		}
	}
	// The runtime gauges are scraped too.
	code, body = getStatus(t, ts.URL+"/api/timeseries?series=rdfa_go_heap_alloc_bytes")
	if code != http.StatusOK || !strings.Contains(string(body), "rdfa_go_heap_alloc_bytes") {
		t.Errorf("heap series missing: %d %s", code, body)
	}
}

// chaosSLOConfig is a latency SLO tight enough that fault-injected delays
// violate it while normal test-server requests stay well inside.
func chaosSLOConfig() Config {
	return Config{
		SLO: SLOConfig{
			AvailabilityTarget: 0.999,
			LatencyTarget:      0.95,
			LatencyThreshold:   250 * time.Millisecond,
		},
	}
}

// TestChaosLatencyAlertLoop closes the observability loop end to end:
// inject latency through the fault harness, drive traffic, tick the sampler
// over a synthetic timeline, observe the latency SLO alert fire in
// GET /api/alerts and /readyz degrade; remove the fault, drive good traffic
// past the burn windows, observe the alert resolve and readiness recover.
func TestChaosLatencyAlertLoop(t *testing.T) {
	if err := fault.Configure("server.handler.slow=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	s, ts := newTestServer(t, chaosSLOConfig())

	t0 := time.Now()
	s.sampler.Tick(t0) // baseline

	// Slow traffic: every request rides through the armed fault site.
	for i := 0; i < 8; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/api/state", nil)
		req.Header.Set("X-Fault", "slow")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if fault.Hits("server.handler.slow") == 0 {
		t.Fatal("fault site never activated")
	}
	s.sampler.Tick(t0.Add(10 * time.Second))

	// The alert must be visible through the public API...
	code, body := getStatus(t, ts.URL+"/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("alerts = %d", code)
	}
	var alerts struct {
		Active []obs.Alert           `json:"active"`
		Recent []obs.AlertEvent      `json:"recent"`
		SLOs   []obs.ObjectiveStatus `json:"slos"`
	}
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	var firing *obs.Alert
	for i := range alerts.Active {
		if alerts.Active[i].Objective == "http-latency" {
			firing = &alerts.Active[i]
		}
	}
	if firing == nil || firing.Severity != obs.SeverityPage {
		t.Fatalf("http-latency page alert not firing: %+v", alerts.Active)
	}
	if len(alerts.SLOs) == 0 {
		t.Error("alerts payload missing SLO statuses")
	}
	// ...and /readyz must shed traffic while paging.
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz while paging = %d %s, want 503 degraded", code, body)
	}

	// Recovery: disarm the fault, drive fast traffic, and advance the clock
	// past every burn window so the bad burst ages out.
	fault.Reset()
	for i := 1; i <= 3; i++ {
		getStatus(t, ts.URL+"/api/state")
		s.sampler.Tick(t0.Add(time.Duration(i) * 7 * time.Hour))
	}
	code, body = getStatus(t, ts.URL+"/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("alerts after recovery = %d", code)
	}
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	for _, a := range alerts.Active {
		if a.Objective == "http-latency" {
			t.Fatalf("alert still firing after recovery: %+v", a)
		}
	}
	resolved := false
	for _, e := range alerts.Recent {
		if e.Objective == "http-latency" && e.State == "resolved" {
			resolved = true
		}
	}
	if !resolved {
		t.Errorf("timeline missing resolved transition: %+v", alerts.Recent)
	}
	if code, _ := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", code)
	}
}

// TestSamplingDifferential proves sampling and SLO evaluation change no
// query results: the same queries against an instrumented and a bare server
// return byte-identical bodies.
func TestSamplingDifferential(t *testing.T) {
	bare, bareTS := newTestServer(t, Config{})
	inst, instTS := newTestServer(t, chaosSLOConfig())
	_ = bare

	queries := []string{
		`SELECT ?s ?m WHERE { ?s a <` + datagen.ExampleNS + `Laptop> . ?s <` + datagen.ExampleNS + `manufacturer> ?m }`,
		`SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l a <` + datagen.ExampleNS + `Laptop> . ?l <` + datagen.ExampleNS + `manufacturer> ?m } GROUP BY ?m`,
		`ASK { ?s a <` + datagen.ExampleNS + `Laptop> }`,
	}
	now := time.Now()
	for i, q := range queries {
		// Interleave sampler ticks and SLO evaluation with the instrumented
		// server's queries to prove they cannot perturb results.
		inst.sampler.Tick(now.Add(time.Duration(i) * 10 * time.Second))
		_, bareBody := getStatus(t, bareTS.URL+"/sparql?query="+url.QueryEscape(q))
		_, instBody := getStatus(t, instTS.URL+"/sparql?query="+url.QueryEscape(q))
		if string(bareBody) != string(instBody) {
			t.Errorf("query %d differs with sampling on:\nbare: %s\ninst: %s", i, bareBody, instBody)
		}
	}
}

// TestShapeLatencyObjectives checks per-fingerprint objectives appear
// lazily once configured.
func TestShapeLatencyObjectives(t *testing.T) {
	cfg := Config{SLO: SLOConfig{
		ShapeLatencyTarget:    0.9,
		ShapeLatencyThreshold: time.Second,
	}}
	s, ts := newTestServer(t, cfg)
	getStatus(t, ts.URL+"/sparql?query="+url.QueryEscape(
		`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> } LIMIT 1`))
	found := false
	for _, st := range s.slos.Statuses() {
		if strings.HasPrefix(st.Name, "shape:") && st.Events > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no shape objective recorded: %+v", s.slos.Statuses())
	}
}

// BenchmarkSamplerOverhead measures one sampler tick over the live default
// registry — the steady-state cost the -sample-interval flag adds. The
// acceptance bar is that at the default 10s interval this amortises to well
// under 2% of query throughput (a tick costs microseconds-to-milliseconds
// once every 10 seconds).
func BenchmarkSamplerOverhead(b *testing.B) {
	s, ts := newTestServer(b, chaosSLOConfig())
	// Populate the registry and workload like live traffic would.
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(
		`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> } LIMIT 1`))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sampler.Tick(now.Add(time.Duration(i) * 10 * time.Second))
	}
}
