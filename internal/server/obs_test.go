package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestMetricsEndpoint drives a few requests through the server and parses
// GET /metrics line by line, checking the exposition format and that the
// metric families the telemetry contract promises are present with
// plausible values.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)

	// Generate traffic: a state fetch, a SPARQL query, and a 404.
	getJSON(t, ts.URL+"/api/state")
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(
		`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> } LIMIT 3`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sparql status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	values := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		// The value is after the LAST space: label values ("GET /api/state")
		// may themselves contain spaces.
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		values[line[:cut]] = line[cut+1:]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		`rdfa_http_requests_total{endpoint="GET /api/state",status="200"}`,
		`rdfa_http_request_seconds_count{endpoint="GET /api/state"}`,
		`rdfa_http_sessions_created_total`,
		`rdfa_http_active_sessions`,
		`rdfa_sparql_query_phase_seconds_count{phase="parse"}`,
		`rdfa_sparql_query_phase_seconds_count{phase="match"}`,
		`rdfa_sparql_exec_seconds_count`,
		`rdfa_rdf_cardinality_cache_hits_total`,
		`rdfa_rdf_cardinality_cache_misses_total`,
		`rdfa_rdf_index_scans_total`,
	} {
		if _, ok := values[want]; !ok {
			t.Errorf("metric %s missing from /metrics", want)
		}
	}
	// The registry is process-global, so other tests in the package may
	// have hit /api/state too — assert at least this test's request landed.
	if v := values[`rdfa_http_requests_total{endpoint="GET /api/state",status="200"}`]; v == "" || v == "0" {
		t.Errorf("state request count = %q, want >= 1", v)
	}
	if v := values[`rdfa_http_active_sessions`]; v != "1" {
		t.Errorf("active sessions = %s, want 1", v)
	}
	if v := values[`rdfa_rdf_index_scans_total`]; v == "0" {
		t.Error("index scans should be nonzero after a query")
	}
}

// TestMiddlewareStatusCapture checks the status label records what the
// handler actually wrote, for both explicit WriteHeader calls and implicit
// 200s, including routes the mux does not know.
func TestMiddlewareStatusCapture(t *testing.T) {
	ts := testServer(t)
	for path, want := range map[string]int{
		"/api/state":   http.StatusOK,
		"/no/such/url": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	// A bad-request POST exercises an explicit error status.
	resp, err := http.Post(ts.URL+"/api/click/class", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad click = %d, want 400", resp.StatusCode)
	}

	body := metricsBody(t, ts.URL)
	for _, want := range []string{
		`rdfa_http_requests_total{endpoint="unmatched",status="404"}`,
		`rdfa_http_requests_total{endpoint="POST /api/click/class",status="400"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s:\n%s", want, body)
		}
	}
}

func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSessionLRUEviction fills the session table past MaxSessions and
// checks the least-recently-used session is the one evicted.
func TestSessionLRUEviction(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := New(g, datagen.ExampleNS)

	req := func(id string) *http.Request {
		r := httptest.NewRequest("GET", "/api/state", nil)
		r.Header.Set("X-Session", id)
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < MaxSessions; i++ {
		s.sessionFor(req(fmt.Sprintf("s%d", i)))
	}
	// Touch s0 so it becomes the most recently used; s1 is now the LRU.
	s.sessionFor(req("s0"))
	s.sessionFor(req("overflow"))
	if len(s.sessions) != MaxSessions {
		t.Fatalf("sessions = %d, want %d", len(s.sessions), MaxSessions)
	}
	if _, ok := s.sessions["s1"]; ok {
		t.Error("s1 (LRU) should have been evicted")
	}
	for _, keep := range []string{"s0", "overflow"} {
		if _, ok := s.sessions[keep]; !ok {
			t.Errorf("session %s should have survived", keep)
		}
	}
}

// TestTraceEndpoint runs an analytic query and a protocol query, then
// fetches their span trees from GET /api/trace.
func TestTraceEndpoint(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Get(ts.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace before any query = %d, want 404", resp.StatusCode)
	}

	// Analytic query: Laptop count grouped by manufacturer.
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": datagen.ExampleNS + "Laptop"})
	postJSON(t, ts.URL+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": datagen.ExampleNS + "manufacturer"}}})
	postJSON(t, ts.URL+"/api/aggregate", map[string]any{"op": "COUNT"})
	postJSON(t, ts.URL+"/api/run", map[string]any{})
	// Protocol query.
	resp, err = http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(
		`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var out struct {
		Analytics *struct {
			Name     string `json:"name"`
			Children []json.RawMessage
		} `json:"analytics"`
		SPARQL *struct {
			Name string `json:"name"`
		} `json:"sparql"`
	}
	resp, err = http.Get(ts.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Analytics == nil || out.Analytics.Name != "run_analytics" {
		t.Errorf("analytics trace = %+v", out.Analytics)
	}
	if out.Analytics != nil && len(out.Analytics.Children) == 0 {
		t.Error("analytics trace has no child spans")
	}
	if out.SPARQL == nil || out.SPARQL.Name != "sparql" {
		t.Errorf("sparql trace = %+v", out.SPARQL)
	}
}

// TestSlowQueryLog checks a threshold of one nanosecond logs every query
// with its plan summary, and the default config logs nothing.
func TestSlowQueryLog(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv := httptest.NewServer(NewWithConfig(g, datagen.ExampleNS, Config{
		SlowQuery:       time.Nanosecond,
		SlowQueryLogger: logger,
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(
		`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> } LIMIT 1`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	logged := buf.String()
	for _, want := range []string{"slow query", "kind=sparql", "Laptop", "plan="} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow log missing %q:\n%s", want, logged)
		}
	}
}
