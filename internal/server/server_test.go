package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func testServer(t testing.TB) *httptest.Server {
	t.Helper()
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	ts := httptest.NewServer(New(g, datagen.ExampleNS))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSPARQLEndpointGET(t *testing.T) {
	ts := testServer(t)
	q := `PREFIX ex: <` + datagen.ExampleNS + `>
SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l a ex:Laptop . ?l ex:manufacturer ?m } GROUP BY ?m`
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res, err := sparql.ParseJSONResults(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestSPARQLEndpointPOSTForm(t *testing.T) {
	ts := testServer(t)
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"query": {`ASK { ?s ?p ?o }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Boolean bool `json:"boolean"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Boolean {
		t.Fatal("ASK returned false")
	}
}

func TestSPARQLEndpointPOSTRaw(t *testing.T) {
	ts := testServer(t)
	q := `PREFIX ex: <` + datagen.ExampleNS + `>
CONSTRUCT { ?l ex:madeBy ?m } WHERE { ?l ex:manufacturer ?m }`
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Fatalf("content type %q", ct)
	}
	g, err := rdf.LoadTurtle(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 { // 3 laptops + 3 HDs have manufacturers
		t.Fatalf("constructed %d triples", g.Len())
	}
}

func TestSPARQLEndpointCSV(t *testing.T) {
	ts := testServer(t)
	req, _ := http.NewRequest("GET",
		ts.URL+"/sparql?query="+url.QueryEscape(`SELECT ?s WHERE { ?s a <`+datagen.ExampleNS+`Laptop> }`), nil)
	req.Header.Set("Accept", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.HasPrefix(buf.String(), "s\n") {
		t.Fatalf("csv: %q", buf.String())
	}
	if strings.Count(buf.String(), "\n") != 4 { // header + 3 rows
		t.Fatalf("csv rows: %q", buf.String())
	}
}

func TestSPARQLEndpointErrors(t *testing.T) {
	ts := testServer(t)
	resp, _ := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape("NOT A QUERY"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/sparql")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestInteractionAPIExample2 drives §5.1 Example 2 through the HTTP API:
// click class Laptop, group by manufacturer/origin, COUNT, run.
func TestInteractionAPIExample2(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	st := getJSON(t, ts.URL+"/api/state")
	if int(st["totalObjects"].(float64)) == 0 {
		t.Fatal("empty initial state")
	}
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	st = postJSON(t, ts.URL+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": ns + "manufacturer"}, {"p": ns + "origin"}},
	})
	postJSON(t, ts.URL+"/api/aggregate", map[string]any{
		"path": []map[string]any{}, "op": "COUNT",
	})
	ans := postJSON(t, ts.URL+"/api/run", map[string]any{})
	rows := ans["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", ans)
	}
	if !strings.Contains(ans["sparql"].(string), "GROUP BY") {
		t.Errorf("sparql: %v", ans["sparql"])
	}
	if !strings.Contains(ans["hifun"].(string), "COUNT") {
		t.Errorf("hifun: %v", ans["hifun"])
	}
	// Chart endpoint renders the answer.
	resp, err := http.Get(ts.URL + "/api/chart?type=pie")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatalf("chart: %q", buf.String()[:60])
	}
}

func TestInteractionAPIRangeAndValue(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	st := postJSON(t, ts.URL+"/api/click/range", map[string]any{
		"path":  []map[string]any{{"p": ns + "USBPorts"}},
		"op":    ">",
		"value": map[string]any{"kind": "literal", "value": "2", "datatype": rdf.XSDInteger},
	})
	if int(st["totalObjects"].(float64)) != 1 {
		t.Fatalf("range filter: %v objects", st["totalObjects"])
	}
	postJSON(t, ts.URL+"/api/back", map[string]any{})
	st = postJSON(t, ts.URL+"/api/click/value", map[string]any{
		"path":  []map[string]any{{"p": ns + "manufacturer"}},
		"value": map[string]any{"kind": "iri", "value": ns + "DELL"},
	})
	if int(st["totalObjects"].(float64)) != 2 {
		t.Fatalf("value click: %v objects", st["totalObjects"])
	}
}

func TestInteractionAPIExpand(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	out := postJSON(t, ts.URL+"/api/expand", map[string]any{
		"path": []map[string]any{{"p": ns + "manufacturer"}, {"p": ns + "origin"}},
	})
	vals := out["values"].([]any)
	if len(vals) != 2 {
		t.Fatalf("expand values: %v", vals)
	}
}

func TestInteractionAPINesting(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	postJSON(t, ts.URL+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": ns + "manufacturer"}},
	})
	postJSON(t, ts.URL+"/api/aggregate", map[string]any{
		"path": []map[string]any{{"p": ns + "price"}}, "op": "AVG",
	})
	postJSON(t, ts.URL+"/api/run", map[string]any{})
	st := postJSON(t, ts.URL+"/api/load-answer", map[string]any{})
	if int(st["depth"].(float64)) != 2 {
		t.Fatalf("depth: %v", st["depth"])
	}
	if int(st["totalObjects"].(float64)) != 2 { // two groups
		t.Fatalf("tuples: %v", st["totalObjects"])
	}
	st = postJSON(t, ts.URL+"/api/close-level", map[string]any{})
	if int(st["depth"].(float64)) != 1 {
		t.Fatalf("depth after close: %v", st["depth"])
	}
}

func TestInteractionAPIPivot(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	st := postJSON(t, ts.URL+"/api/pivot", map[string]any{"p": ns + "manufacturer"})
	if int(st["totalObjects"].(float64)) != 2 { // DELL, Lenovo
		t.Fatalf("pivot objects: %v", st["totalObjects"])
	}
	// Missing property errors.
	resp, _ := http.Post(ts.URL+"/api/pivot", "application/json", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty pivot: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSPARQLEndpointDescribe(t *testing.T) {
	ts := testServer(t)
	q := `PREFIX ex: <` + datagen.ExampleNS + `> DESCRIBE ex:laptop1`
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	g, err := rdf.LoadTurtle(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty description")
	}
}

func TestAPIErrors(t *testing.T) {
	ts := testServer(t)
	// run without aggregate
	resp, _ := http.Post(ts.URL+"/api/run", "application/json", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("run without op: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// bad aggregate op
	data, _ := json.Marshal(map[string]any{"path": []any{}, "op": "NOPE"})
	resp, _ = http.Post(ts.URL+"/api/aggregate", "application/json", bytes.NewReader(data))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// chart before run
	resp, _ = http.Get(ts.URL + "/api/chart")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("chart before run: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// load-answer before run
	resp, _ = http.Post(ts.URL+"/api/load-answer", "application/json", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("load before run: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSPARQLEndpointUpdate(t *testing.T) {
	ts := testServer(t)
	// Form-encoded update.
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`PREFIX ex: <http://new/> INSERT DATA { ex:a ex:p ex:b . }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["inserted"] != 1 {
		t.Fatalf("inserted = %v", out)
	}
	// Raw-body update.
	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-update",
		strings.NewReader(`PREFIX ex: <http://new/> DELETE DATA { ex:a ex:p ex:b . }`))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["deleted"] != 1 {
		t.Fatalf("deleted = %v", out)
	}
	// The inserted triple is gone again.
	yes, _ := func() (bool, error) {
		r, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(`ASK { <http://new/a> ?p ?o }`))
		if err != nil {
			return false, err
		}
		defer r.Body.Close()
		var a struct {
			Boolean bool `json:"boolean"`
		}
		json.NewDecoder(r.Body).Decode(&a)
		return a.Boolean, nil
	}()
	if yes {
		t.Error("triple survived delete")
	}
	// Malformed update errors.
	resp, _ = http.PostForm(ts.URL+"/sparql", url.Values{"update": {"GARBAGE"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage update: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestStatsAndIndex(t *testing.T) {
	ts := testServer(t)
	st := getJSON(t, ts.URL+"/api/stats")
	if st["triples"].(float64) == 0 {
		t.Fatal("stats empty")
	}
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "RDF-Analytics") {
		t.Fatal("index page broken")
	}
}

// TestMultiSession: distinct X-Session ids get independent interaction
// states.
func TestMultiSession(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	post := func(session, path string, body any) map[string]any {
		t.Helper()
		data, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Session", session)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s (%s): %d %v", path, session, resp.StatusCode, out)
		}
		return out
	}
	get := func(session, path string) map[string]any {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("X-Session", session)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	// Alice narrows to laptops; Bob narrows to companies.
	a := post("alice", "/api/click/class", map[string]any{"class": ns + "Laptop"})
	b := post("bob", "/api/click/class", map[string]any{"class": ns + "Company"})
	if int(a["totalObjects"].(float64)) != 3 || int(b["totalObjects"].(float64)) != 4 {
		t.Fatalf("alice=%v bob=%v", a["totalObjects"], b["totalObjects"])
	}
	// Each sees their own state afterwards.
	if st := get("alice", "/api/state"); int(st["totalObjects"].(float64)) != 3 {
		t.Errorf("alice state: %v", st["totalObjects"])
	}
	if st := get("bob", "/api/state"); int(st["totalObjects"].(float64)) != 4 {
		t.Errorf("bob state: %v", st["totalObjects"])
	}
	// The ?session= query parameter works too.
	resp, err := http.Get(ts.URL + "/api/state?session=alice")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if int(st["totalObjects"].(float64)) != 3 {
		t.Errorf("query-param session: %v", st["totalObjects"])
	}
	// The anonymous default session is untouched.
	if st := get("", "/api/state"); int(st["totalObjects"].(float64)) == 3 {
		t.Error("default session leaked alice's state")
	}
}

func TestChartTypes(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	postJSON(t, ts.URL+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": ns + "manufacturer"}},
	})
	postJSON(t, ts.URL+"/api/aggregate", map[string]any{
		"path": []map[string]any{{"p": ns + "price"}}, "op": "SUM",
	})
	postJSON(t, ts.URL+"/api/run", map[string]any{})
	for _, typ := range []string{"bar", "pie", "column", "line", "treemap", "spiral"} {
		resp, err := http.Get(ts.URL + "/api/chart?type=" + typ)
		if err != nil {
			t.Fatal(err)
		}
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(buf.String(), "<svg") {
			t.Errorf("chart type %s: status %d, body %q", typ, resp.StatusCode, buf.String()[:40])
		}
	}
	// Bad measure index errors.
	resp, _ := http.Get(ts.URL + "/api/chart?measure=99")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad measure: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestAnswerCSV(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	// Before any run: 400.
	resp, _ := http.Get(ts.URL + "/api/answer.csv")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pre-run status %d", resp.StatusCode)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	postJSON(t, ts.URL+"/api/groupby", map[string]any{
		"path": []map[string]any{{"p": ns + "manufacturer"}},
	})
	postJSON(t, ts.URL+"/api/aggregate", map[string]any{
		"path": []map[string]any{{"p": ns + "price"}}, "op": "SUM",
	})
	postJSON(t, ts.URL+"/api/run", map[string]any{})
	resp, err := http.Get(ts.URL + "/api/answer.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + DELL + Lenovo
		t.Fatalf("csv:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], "sum_price") {
		t.Errorf("header: %q", lines[0])
	}
}

func TestUIPage(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/ui")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	html := buf.String()
	for _, want := range []string{"<title>RDF-Analytics</title>", "/api/state", "/api/groupby", "runQuery"} {
		if !strings.Contains(html, want) {
			t.Errorf("UI page missing %q", want)
		}
	}
}

func TestResetEndpoint(t *testing.T) {
	ts := testServer(t)
	ns := datagen.ExampleNS
	postJSON(t, ts.URL+"/api/click/class", map[string]any{"class": ns + "Laptop"})
	st := postJSON(t, ts.URL+"/api/reset", map[string]any{})
	if st["breadcrumb"].(string) != "⊤" {
		t.Fatalf("breadcrumb after reset: %v", st["breadcrumb"])
	}
}
