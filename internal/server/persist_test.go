package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/store"
)

// storeServer boots a server over a durable store bootstrapped with the
// small products dataset, returning both plus the data directory.
func storeServer(t *testing.T) (*httptest.Server, *store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	if err := st.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithConfig(st.Graph(), datagen.ExampleNS, Config{Store: st}))
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts, st, dir
}

// TestUpdateDurableAck: an acknowledged SPARQL update is on disk — a fresh
// store opened on the same directory (while the server's own store is
// abandoned, as a crash would) sees it.
func TestUpdateDurableAck(t *testing.T) {
	ts, st, dir := storeServer(t)
	before := st.Stats().WALRecordsTotal
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`PREFIX ex: <http://new/> INSERT DATA { ex:a ex:p ex:b . }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d", resp.StatusCode)
	}
	if st.Stats().WALRecordsTotal != before+1 {
		t.Fatalf("WAL records %d → %d, want +1", before, st.Stats().WALRecordsTotal)
	}
	// Reopen the directory cold — no Close on the server's store first.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	want := rdf.Triple{S: rdf.NewIRI("http://new/a"), P: rdf.NewIRI("http://new/p"), O: rdf.NewIRI("http://new/b")}
	if !st2.Graph().Has(want) {
		t.Fatal("acknowledged update missing after cold reopen")
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	ts, st, _ := storeServer(t)
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`PREFIX ex: <http://new/> INSERT DATA { ex:c ex:p ex:d . }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Stats().TailRecords == 0 {
		t.Fatal("setup: expected a tail record before checkpoint")
	}
	out := postJSON(t, ts.URL+"/api/checkpoint", map[string]any{})
	if out["tailRecords"].(float64) != 0 {
		t.Fatalf("checkpoint left a tail: %v", out)
	}
	if st.Stats().TailRecords != 0 {
		t.Fatal("tail not folded after /api/checkpoint")
	}
	// The endpoint 409s on a store-less server.
	plain := testServer(t)
	resp, err = http.Post(plain.URL+"/api/checkpoint", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without store: %d, want 409", resp.StatusCode)
	}
}

// TestStoreMetricsExported: the rdfa_store_* family shows up on /metrics
// with the store wired in.
func TestStoreMetricsExported(t *testing.T) {
	ts, _, _ := storeServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, name := range []string{
		"rdfa_store_wal_records_total",
		"rdfa_store_wal_bytes_total",
		"rdfa_store_checkpoints_total",
		"rdfa_store_segments",
		"rdfa_store_tail_records",
		"rdfa_store_epoch",
		"rdfa_store_last_checkpoint_seconds",
		"rdfa_store_replay_seconds",
		"rdfa_store_replay_records",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}
