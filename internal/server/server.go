// Package server exposes the RDF-Analytics system over HTTP, mirroring the
// architecture of Fig 6.1: a SPARQL protocol endpoint backed by the
// in-process engine, and a JSON API through which a GUI (or the bundled
// terminal client) drives the interaction model — faceted clicks, the G/Σ
// analytic buttons, answer-frame retrieval, chart rendering, and reloading
// answers as new datasets.
package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/resilience"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/store"
	"rdfanalytics/internal/viz"
)

// Server wires one graph and per-client interaction sessions to HTTP
// handlers. Clients carry a session id in the X-Session header (or
// ?session= query parameter); requests without one share the default
// session, matching the paper's public-demo semantics. All access is
// serialized by a mutex.
type Server struct {
	mu       sync.Mutex
	graph    *rdf.Graph
	ns       string
	sessions map[string]*sessEntry
	clock    uint64 // logical tick for LRU eviction; advanced under mu
	mux      *http.ServeMux
	cfg      Config
	// traces is the tail-sampling retention store of completed traces:
	// every errored/aborted execution, the slowest-N per fingerprint,
	// latency outliers against the fingerprint's rolling p95, and a
	// probabilistic residual (see obs.TraceStore). It carries its own lock
	// because the /sparql read path runs without s.mu — graph reads are
	// internally locked, so queries execute concurrently, a prerequisite
	// for singleflight collapse.
	traces *obs.TraceStore
	slow   *obs.SlowQueryLog
	// answers/flight/gate/breakers are the overload-resilience layer: the
	// fingerprint answer cache, the singleflight group collapsing identical
	// concurrent queries, the admission controller, and the per-fingerprint
	// circuit breaker (see internal/resilience and resilience.go here).
	answers  *resilience.AnswerCache
	flight   *resilience.Group
	gate     *resilience.Admission
	breakers *resilience.Breakers
	// workload aggregates every completed query by structural fingerprint,
	// feeding GET /api/workload and /debug/dashboard.
	workload *obs.Workload
	// feedback is the cost-based planner's execution-feedback store: every
	// profiled query seeds it with per-scan actual cardinalities, and
	// replans of the same fingerprint (interactive sessions re-run the same
	// shapes every facet click) plan with those actuals instead of cold
	// stats-cache estimates.
	feedback *sparql.FeedbackStore
	// sampler/slos/alerts are the telemetry time-series engine: the sampler
	// scrapes every metric into bounded ring buffers, the SLO set evaluates
	// multi-window burn rates on each tick, and the alert log records the
	// firing/resolved transitions (see internal/obs timeseries.go, slo.go,
	// alerts.go).
	sampler *obs.Sampler
	slos    *obs.SLOSet
	alerts  *obs.AlertLog
	// sloHTTPAvail/sloHTTPLat are the process-wide HTTP objectives the
	// middleware records into (nil when disabled by config).
	sloHTTPAvail *obs.Objective
	sloHTTPLat   *obs.Objective
	// draining flips when graceful shutdown begins; /healthz and /readyz
	// answer 503 from then on.
	draining atomic.Bool
	// sweepStop/sweepDone control the idle-session sweeper goroutine
	// (started only when Config.SessionTTL is set; see hardening.go).
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// sessEntry pairs a session with its last-use tick for LRU eviction and
// wall-clock timestamp for idle-TTL expiry.
type sessEntry struct {
	sess     *core.Session
	lastUsed uint64
	lastAt   time.Time
}

// MaxSessions caps concurrently tracked sessions; creating one beyond the
// cap evicts the least-recently-used existing session.
const MaxSessions = 256

// Config carries the optional observability and resource-governance knobs
// of the server.
type Config struct {
	// SlowQuery, when positive, logs queries slower than this threshold
	// (with their plan summary) through SlowQueryLogger.
	SlowQuery time.Duration
	// SlowQueryLogger receives slow-query records; nil means slog.Default().
	SlowQueryLogger *slog.Logger
	// Debug mounts net/http/pprof under /debug/pprof/.
	Debug bool
	// QueryTimeout, when positive, bounds the wall-clock time of every
	// query evaluation (/sparql and /api/run); expiry answers 504 with a
	// structured timeout error.
	QueryTimeout time.Duration
	// MaxBodyBytes caps POST request bodies; 0 means DefaultMaxBodyBytes,
	// negative disables the cap. Oversized bodies answer 413.
	MaxBodyBytes int64
	// SessionTTL, when positive, expires interaction sessions idle longer
	// than this via a background sweeper (see hardening.go).
	SessionTTL time.Duration
	// Limits are the per-query resource budgets applied to every session
	// and protocol-endpoint evaluation.
	Limits sparql.Limits
	// SampleInterval starts the background telemetry sampler at this
	// period. Zero leaves the sampler passive (no goroutine): endpoints
	// still work and tests drive ticks manually.
	SampleInterval time.Duration
	// SLO configures the declarative objectives the burn-rate evaluator
	// watches. The zero value disables all of them.
	SLO SLOConfig
	// CacheBytes bounds the fingerprint answer cache of the overload-
	// resilience layer (rendered /sparql responses, keyed by fingerprint ×
	// query text, invalidated by graph version). 0 disables caching.
	CacheBytes int64
	// NegativeTTL bounds how long a remembered parse error is served from
	// the negative cache; 0 takes resilience.DefaultNegativeTTL.
	NegativeTTL time.Duration
	// MaxConcurrent caps concurrently executing /sparql queries via the
	// admission controller; 0 disables the gate (unbounded concurrency).
	MaxConcurrent int
	// QueueDepth bounds the admission wait queue; beyond it requests are
	// shed with 503 + Retry-After. Only meaningful with MaxConcurrent > 0.
	QueueDepth int
	// StaleWindow bounds degraded-mode stale serving: while degraded,
	// cache entries from older graph versions are served if filled within
	// this window. 0 disables stale serving.
	StaleWindow time.Duration
	// NoCollapse disables the singleflight group that collapses concurrent
	// identical queries into one execution.
	NoCollapse bool
	// DegradedShedCost is the per-shape EWMA cost above which uncached
	// query shapes are shed while degraded; 0 takes 250ms.
	DegradedShedCost time.Duration
	// BreakerThreshold/BreakerCooldown tune the per-fingerprint circuit
	// breaker (consecutive budget/timeout aborts to open; reject window
	// before the half-open probe). Zero values take the resilience-package
	// defaults. The breaker is active whenever the resilience layer is
	// (CacheBytes > 0, MaxConcurrent > 0, or BreakerThreshold set).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Store, when non-nil, is the durable store backing the served graph:
	// updates are acknowledged only after the store's group-commit sync,
	// POST /api/checkpoint triggers compaction, and rdfa_store_* metrics
	// are exported.
	Store *store.Store
	// TraceRetention tunes the tail-sampling trace store backing
	// GET /api/traces and metric exemplars. The zero value enables
	// retention with the obs package defaults; set Disabled to turn the
	// store off (trace-dependent surfaces degrade to the last-trace
	// fallback).
	TraceRetention obs.TraceStoreConfig
}

// SLOConfig declares the service-level objectives. A target of 0 disables
// the corresponding objective; targets are fractions in (0, 1).
type SLOConfig struct {
	// AvailabilityTarget is the good-response ratio for the whole HTTP
	// surface (good = status < 500), e.g. 0.999.
	AvailabilityTarget float64
	// LatencyTarget/LatencyThreshold: LatencyTarget of all HTTP requests
	// must finish within LatencyThreshold (e.g. 0.95 within 250ms). Also
	// applied per endpoint (objectives named "endpoint:<pattern>").
	LatencyTarget    float64
	LatencyThreshold time.Duration
	// ShapeLatencyTarget/ShapeLatencyThreshold: per-query-fingerprint
	// latency objectives, created lazily as shapes appear (objectives
	// named "shape:<fingerprint>").
	ShapeLatencyTarget    float64
	ShapeLatencyThreshold time.Duration
	// Burn overrides the evaluation windows/factors; zero fields take
	// obs.DefaultBurnConfig.
	Burn obs.BurnConfig
}

// maxBodyBytes resolves the configured POST body cap.
func (c Config) maxBodyBytes() int64 {
	switch {
	case c.MaxBodyBytes == 0:
		return DefaultMaxBodyBytes
	case c.MaxBodyBytes < 0:
		return 0
	default:
		return c.MaxBodyBytes
	}
}

// New builds a server over g with attribute namespace ns and default
// observability settings (no slow-query log, no pprof).
func New(g *rdf.Graph, ns string) *Server {
	return NewWithConfig(g, ns, Config{})
}

// NewWithConfig builds a server with explicit observability settings.
func NewWithConfig(g *rdf.Graph, ns string, cfg Config) *Server {
	s := &Server{graph: g, ns: ns, sessions: map[string]*sessEntry{}, cfg: cfg}
	logger := cfg.SlowQueryLogger
	if logger == nil {
		logger = slog.Default()
	}
	s.slow = obs.NewSlowQueryLog(logger, cfg.SlowQuery, obs.Default)
	s.workload = obs.NewWorkload(256)
	s.feedback = sparql.NewFeedbackStore()
	// Tail-sampling trace retention: the outlier test borrows the workload
	// profiler's rolling per-fingerprint p95 as its baseline.
	trCfg := cfg.TraceRetention
	if trCfg.P95 == nil {
		trCfg.P95 = s.workload.P95Seconds
	}
	s.traces = obs.NewTraceStore(trCfg)
	// Telemetry engine: runtime + build-info metrics feed the registry, the
	// sampler retains everything in ring buffers, and the SLO set evaluates
	// burn rates on every tick.
	obs.RegisterRuntimeMetrics(obs.Default)
	obs.RegisterBuildInfo(obs.Default)
	s.alerts = obs.NewAlertLog(obs.Default)
	s.slos = obs.NewSLOSet(obs.Default, s.alerts, cfg.SLO.Burn)
	if t := cfg.SLO.AvailabilityTarget; t > 0 {
		s.sloHTTPAvail = s.slos.Add("http-availability", obs.SLOAvailability, t, 0)
	}
	if t := cfg.SLO.LatencyTarget; t > 0 && cfg.SLO.LatencyThreshold > 0 {
		s.sloHTTPLat = s.slos.Add("http-latency", obs.SLOLatency, t, cfg.SLO.LatencyThreshold)
	}
	s.sampler = obs.NewSampler(obs.Default, s.workload, s.slos,
		obs.TSDBConfig{Interval: cfg.SampleInterval})
	// Overload-resilience layer (see resilience.go): each piece degrades to
	// a nil no-op when its knob is off, so the zero Config keeps today's
	// direct-execution behavior.
	s.answers = resilience.NewAnswerCache(cfg.CacheBytes, cfg.NegativeTTL,
		func(string, int64) { cacheEvictAnswer.Inc() })
	if !cfg.NoCollapse {
		s.flight = &resilience.Group{}
	}
	s.gate = resilience.NewAdmission(cfg.MaxConcurrent, cfg.QueueDepth)
	if cfg.CacheBytes > 0 || cfg.MaxConcurrent > 0 || cfg.BreakerThreshold > 0 {
		s.breakers = resilience.NewBreakers(cfg.BreakerThreshold, cfg.BreakerCooldown,
			func(to string) { breakerTransition(to).Inc() })
	}
	obs.Default.GaugeFunc("rdfa_cache_bytes", func() float64 {
		return float64(s.answers.Bytes())
	})
	obs.Default.GaugeFunc("rdfa_cache_entries", func() float64 {
		return float64(s.answers.Entries())
	})
	obs.Default.GaugeFunc("rdfa_admission_inflight", func() float64 {
		return float64(s.gate.Inflight())
	})
	obs.Default.GaugeFunc("rdfa_admission_waiting", func() float64 {
		return float64(s.gate.Waiting())
	})
	obs.Default.GaugeFunc("rdfa_server_degraded", func() float64 {
		if s.Degraded() {
			return 1
		}
		return 0
	})
	// Graph-level statistics are exported as functions evaluated at
	// scrape time; re-registering (tests build many servers) rebinds the
	// closures to the newest server's graph.
	obs.Default.CounterFunc("rdfa_rdf_cardinality_cache_hits_total", func() float64 {
		_, hits, _ := g.CardCacheStats()
		return float64(hits)
	})
	obs.Default.CounterFunc("rdfa_rdf_cardinality_cache_misses_total", func() float64 {
		_, _, misses := g.CardCacheStats()
		return float64(misses)
	})
	obs.Default.GaugeFunc("rdfa_rdf_cardinality_cache_size", func() float64 {
		size, _, _ := g.CardCacheStats()
		return float64(size)
	})
	obs.Default.CounterFunc("rdfa_rdf_index_scans_total", func() float64 {
		return float64(g.IndexScans())
	})
	if cfg.Store != nil {
		registerStoreMetrics(cfg.Store)
	}
	obs.Default.GaugeFunc("rdfa_http_active_sessions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("/sparql", s.handleSPARQL)
	mux.HandleFunc("GET /api/state", s.handleState)
	mux.HandleFunc("POST /api/click/class", s.handleClickClass)
	mux.HandleFunc("POST /api/click/value", s.handleClickValue)
	mux.HandleFunc("POST /api/click/range", s.handleClickRange)
	mux.HandleFunc("POST /api/expand", s.handleExpand)
	mux.HandleFunc("POST /api/pivot", s.handlePivot)
	mux.HandleFunc("POST /api/groupby", s.handleGroupBy)
	mux.HandleFunc("POST /api/aggregate", s.handleAggregate)
	mux.HandleFunc("POST /api/run", s.handleRun)
	mux.HandleFunc("POST /api/load-answer", s.handleLoadAnswer)
	mux.HandleFunc("POST /api/close-level", s.handleCloseLevel)
	mux.HandleFunc("POST /api/back", s.handleBack)
	mux.HandleFunc("POST /api/reset", s.handleReset)
	mux.HandleFunc("GET /api/chart", s.handleChart)
	mux.HandleFunc("GET /api/answer.csv", s.handleAnswerCSV)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /api/trace", s.handleTrace)
	mux.HandleFunc("GET /api/traces", s.handleTraces)
	mux.HandleFunc("GET /api/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("GET /api/workload", s.handleWorkload)
	mux.HandleFunc("GET /api/timeseries", s.handleTimeseries)
	mux.HandleFunc("GET /api/alerts", s.handleAlerts)
	mux.HandleFunc("POST /api/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/dashboard", s.handleDashboard)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /ui", s.handleUI)
	if cfg.Debug {
		mountDebug(mux)
	}
	s.mux = mux
	if cfg.SessionTTL > 0 {
		s.startSweeper(cfg.SessionTTL)
	}
	if cfg.SampleInterval > 0 {
		s.sampler.Start()
	}
	return s
}

// sessionFor returns (creating if needed) the session for the request's
// X-Session header / ?session= parameter, bumping its LRU tick. When the
// session table is full, the least-recently-used session is evicted.
// Callers must hold s.mu.
func (s *Server) sessionFor(r *http.Request) *core.Session {
	id := r.Header.Get("X-Session")
	if id == "" {
		id = r.URL.Query().Get("session")
	}
	s.clock++
	if e, ok := s.sessions[id]; ok {
		e.lastUsed = s.clock
		e.lastAt = time.Now()
		return e.sess
	}
	if len(s.sessions) >= MaxSessions {
		var victim string
		oldest := uint64(1<<64 - 1)
		for k, e := range s.sessions {
			if e.lastUsed < oldest {
				oldest, victim = e.lastUsed, k
			}
		}
		delete(s.sessions, victim)
		sessionsEvicted.Inc()
	}
	sess := core.NewSession(s.graph, s.ns)
	sess.SetLimits(s.cfg.Limits)
	sess.SetFeedback(s.feedback)
	// The sink fires inside RunAnalyticsCtx while the caller holds s.mu;
	// retainAnalytics only touches the trace store (its own lock).
	sess.SetTraceSink(s.retainAnalytics)
	if s.cfg.Store != nil {
		sess.SetDurability(s.cfg.Store.Sync)
	}
	s.sessions[id] = &sessEntry{sess: sess, lastUsed: s.clock, lastAt: time.Now()}
	sessionsCreated.Inc()
	return sess
}

// ---- term and path JSON codecs ----

// TermJSON is the wire form of an RDF term.
type TermJSON struct {
	Kind     string `json:"kind"` // iri | blank | literal
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"lang,omitempty"`
	Label    string `json:"label,omitempty"` // display hint (output only)
}

func toTermJSON(t rdf.Term) TermJSON {
	out := TermJSON{Value: t.Value, Datatype: t.Datatype, Lang: t.Lang, Label: t.LocalName()}
	switch t.Kind {
	case rdf.KindIRI:
		out.Kind = "iri"
	case rdf.KindBlank:
		out.Kind = "blank"
	default:
		out.Kind = "literal"
	}
	return out
}

func fromTermJSON(j TermJSON) (rdf.Term, error) {
	switch j.Kind {
	case "iri":
		return rdf.NewIRI(j.Value), nil
	case "blank":
		return rdf.NewBlank(j.Value), nil
	case "literal", "":
		if j.Lang != "" {
			return rdf.NewLangString(j.Value, j.Lang), nil
		}
		if j.Datatype != "" {
			return rdf.NewTyped(j.Value, j.Datatype), nil
		}
		return rdf.NewString(j.Value), nil
	default:
		return rdf.Term{}, fmt.Errorf("unknown term kind %q", j.Kind)
	}
}

// StepJSON is the wire form of a facet path step.
type StepJSON struct {
	P       string `json:"p"`
	Inverse bool   `json:"inverse,omitempty"`
}

func fromPathJSON(steps []StepJSON) facet.Path {
	out := make(facet.Path, len(steps))
	for i, s := range steps {
		out[i] = facet.PathStep{P: rdf.NewIRI(s.P), Inverse: s.Inverse}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONBody encodes v without touching headers or status (callers have
// already written them).
func writeJSONBody(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	// A body rejected by http.MaxBytesReader surfaces wherever the handler
	// happened to read it; the taxonomy status wins over the caller's.
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	body := map[string]string{"error": err.Error()}
	// The middleware stamped the request id on the response headers before
	// the handler ran; echoing it in the body lets clients quote it when
	// reporting failures.
	if id := w.Header().Get("X-Request-ID"); id != "" {
		body["request_id"] = id
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func decode[T any](r *http.Request, into *T) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(into)
}

// ---- SPARQL protocol ----

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	var query string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, "application/sparql-query"):
			buf := new(strings.Builder)
			if _, err := copyBody(buf, r); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			query = buf.String()
		case strings.HasPrefix(ct, "application/sparql-update"):
			buf := new(strings.Builder)
			if _, err := copyBody(buf, r); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			s.execUpdate(w, r, buf.String())
			return
		default:
			if err := r.ParseForm(); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			if upd := r.PostForm.Get("update"); upd != "" {
				s.execUpdate(w, r, upd)
				return
			}
			query = r.PostForm.Get("query")
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
		return
	}
	if strings.TrimSpace(query) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query parameter"))
		return
	}
	// The read path deliberately does NOT hold s.mu: graph reads are
	// internally locked (rdf.Graph is an RWMutex), and the slow-query log,
	// workload profiler, feedback store and SLO set all carry their own
	// locks. Running queries concurrently is what lets the singleflight
	// group collapse a thundering herd into one execution (resilience.go).
	if st, _, msg, ok := s.answers.LookupNegative(query, time.Now()); ok {
		cacheNegative.Inc()
		w.Header().Set("X-Cache", "negative")
		httpError(w, st, errors.New(msg))
		return
	}
	q, err := sparql.Parse(query)
	if err != nil {
		s.answers.StoreNegative(query, http.StatusBadRequest, "parse_error", err.Error(), time.Now())
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	switch q.Form {
	case sparql.FormSelect, sparql.FormAsk:
		s.serveQuery(w, r, ctx, q, query)
	case sparql.FormConstruct, sparql.FormDescribe:
		s.serveGraphQuery(w, r, ctx, q, query)
	}
}

// recordWorkload folds one finished query into the workload profiler:
// outcome from the error's abort taxonomy, worst q-error and plan-vs-actual
// rows from the operator profile, and the profile export retained as the
// fingerprint's worst-case exemplar. Safe with a nil profile.
func (s *Server) recordWorkload(kind, query, shape string, dur time.Duration, rows int, err error, prof *sparql.Profile) {
	outcome := "ok"
	if err != nil {
		outcome = sparql.AbortReason(err)
		if outcome == "" {
			outcome = "error"
		}
	}
	var exemplar any
	if exp := prof.Export(); exp != nil {
		exemplar = exp
	}
	s.workload.Observe(obs.QueryRecord{
		FingerprintID: sparql.FingerprintID(shape),
		Shape:         shape,
		Kind:          kind,
		Query:         query,
		Duration:      dur,
		Rows:          rows,
		Outcome:       outcome,
		MaxQError:     prof.MaxQError(),
		When:          time.Now(),
	}, exemplar)
	if ests := prof.Estimates(); len(ests) > 0 {
		conv := make([]obs.OpEstimate, len(ests))
		for i, e := range ests {
			conv[i] = obs.OpEstimate{
				Op: e.Op, Label: e.Label, Est: e.Est, Actual: e.Actual,
				QError: e.QError, Feedback: e.Feedback,
			}
		}
		s.workload.ObserveEstimates(conv)
	}
	// Per-query-shape latency objectives, created lazily as shapes appear.
	// Add is idempotent and degrades to nil past the objective cap, and a
	// nil objective's Observe is a no-op.
	if t := s.cfg.SLO.ShapeLatencyTarget; t > 0 && s.cfg.SLO.ShapeLatencyThreshold > 0 {
		s.slos.Add("shape:"+sparql.FingerprintID(shape), obs.SLOLatency, t, s.cfg.SLO.ShapeLatencyThreshold).
			Observe(dur, err != nil)
	}
}

// execUpdate applies a SPARQL update and reports the change counts. The
// interaction session keeps working over the mutated graph (its facet
// counts reflect the new data on the next state computation).
func (s *Server) execUpdate(w http.ResponseWriter, r *http.Request, src string) {
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	tr := obs.NewTrace("update")
	tr.SetID(obs.TraceIDFrom(ctx))
	if id := requestID(r); id != "" {
		tr.Root().SetAttr("request_id", id)
	}
	var updErr error
	defer func() {
		tr.Finish()
		outcome, msg := traceOutcome(updErr)
		s.traces.Offer(obs.TraceCandidate{
			Trace:         tr,
			Kind:          "update",
			FingerprintID: sparql.FingerprintID("update " + src),
			Shape:         "update",
			Query:         src,
			RequestID:     requestID(r),
			Duration:      time.Since(start),
			Outcome:       outcome,
			Err:           msg,
		})
	}()
	es := tr.Root().StartChild("exec")
	res, err := sparql.ExecUpdateCtx(ctx, s.graph, src)
	es.Finish()
	if err != nil {
		updErr = err
		code := abortStatus(err, http.StatusBadRequest)
		if code == http.StatusBadRequest {
			httpError(w, code, err)
		} else {
			queryError(w, err)
		}
		return
	}
	tr.Root().SetAttr("inserted", res.Inserted)
	tr.Root().SetAttr("deleted", res.Deleted)
	if res.Inserted > 0 || res.Deleted > 0 {
		for _, e := range s.sessions {
			e.sess.InvalidateCache()
		}
	}
	// Group commit: the mutations were journaled as they applied; fsync the
	// WAL before acknowledging so an acked update survives kill -9.
	if s.cfg.Store != nil {
		gc := tr.Root().StartChild("group_commit")
		err := s.cfg.Store.Sync()
		gc.Finish()
		if err != nil {
			updErr = err
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("update applied but not durable: %w", err))
			return
		}
	}
	writeJSON(w, map[string]int{"inserted": res.Inserted, "deleted": res.Deleted})
}

func copyBody(dst *strings.Builder, r *http.Request) (int64, error) {
	defer r.Body.Close()
	buf := make([]byte, 4096)
	var n int64
	for {
		m, err := r.Body.Read(buf)
		dst.Write(buf[:m])
		n += int64(m)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// ---- interaction API ----

// stateJSON is the wire form of the UI state.
type stateJSON struct {
	Breadcrumb   string        `json:"breadcrumb"`
	TotalObjects int           `json:"totalObjects"`
	Depth        int           `json:"depth"`
	HIFUN        string        `json:"hifun,omitempty"`
	Objects      []objectJSON  `json:"objects"`
	Classes      []classJSON   `json:"classes"`
	Facets       []facetJSON   `json:"facets"`
	Analytics    analyticsJSON `json:"analytics"`
}

type objectJSON struct {
	IRI   string `json:"iri"`
	Label string `json:"label"`
	Type  string `json:"type,omitempty"`
}

type classJSON struct {
	IRI      string      `json:"iri"`
	Label    string      `json:"label"`
	Count    int         `json:"count"`
	Children []classJSON `json:"children,omitempty"`
}

type facetJSON struct {
	P        string       `json:"p"`
	Label    string       `json:"label"`
	Inverse  bool         `json:"inverse,omitempty"`
	Grouped  bool         `json:"grouped,omitempty"`
	Measured bool         `json:"measured,omitempty"`
	Numeric  bool         `json:"numeric,omitempty"`
	Values   []valJSON    `json:"values"`
	Buckets  []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

type valJSON struct {
	Term  TermJSON `json:"term"`
	Count int      `json:"count"`
}

type analyticsJSON struct {
	GroupBy []string `json:"groupBy"`
	Measure string   `json:"measure,omitempty"`
	Ops     []string `json:"ops"`
}

func toClassJSON(nodes []facet.ClassNode) []classJSON {
	out := make([]classJSON, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, classJSON{
			IRI: n.Class.Value, Label: n.Class.LocalName(), Count: n.Count,
			Children: toClassJSON(n.Children),
		})
	}
	return out
}

func (s *Server) stateLocked(sess *core.Session) stateJSON {
	ui := sess.ComputeUIState(50, true)
	out := stateJSON{
		Breadcrumb:   ui.Breadcrumb,
		TotalObjects: ui.TotalObjects,
		Depth:        ui.Depth,
		HIFUN:        ui.HIFUN,
		Classes:      toClassJSON(ui.Classes),
	}
	for _, o := range ui.Objects {
		oj := objectJSON{IRI: o.Object.Value, Label: o.Object.LocalName()}
		if !o.Type.IsZero() {
			oj.Type = o.Type.LocalName()
		}
		out.Objects = append(out.Objects, oj)
	}
	for _, f := range ui.Facets {
		fj := facetJSON{
			P: f.P.Value, Label: f.P.LocalName(), Inverse: f.Inverse,
			Grouped: f.Grouped, Measured: f.Measured, Numeric: f.Numeric,
		}
		for _, vc := range f.Values {
			fj.Values = append(fj.Values, valJSON{Term: toTermJSON(vc.Value), Count: vc.Count})
		}
		for _, b := range f.Buckets {
			fj.Buckets = append(fj.Buckets, bucketJSON{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		out.Facets = append(out.Facets, fj)
	}
	a := ui.Analytics
	for _, g := range a.GroupBy {
		out.Analytics.GroupBy = append(out.Analytics.GroupBy, g.String())
	}
	if a.Measure.Path != nil || len(a.Ops) > 0 {
		out.Analytics.Measure = a.Measure.String()
	}
	for _, op := range a.Ops {
		out.Analytics.Ops = append(out.Analytics.Ops, op.String())
	}
	return out
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.stateLocked(s.sessionFor(r)))
}

func (s *Server) handleClickClass(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Class string `json:"class"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.ClickClass(rdf.NewIRI(req.Class))
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleClickValue(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path   []StepJSON `json:"path"`
		Value  *TermJSON  `json:"value"`
		Values []TermJSON `json:"values"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	path := fromPathJSON(req.Path)
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	switch {
	case len(req.Values) > 0:
		vs := make([]rdf.Term, 0, len(req.Values))
		for _, j := range req.Values {
			t, err := fromTermJSON(j)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			vs = append(vs, t)
		}
		sess.ClickValueSet(path, vs)
	case req.Value != nil:
		t, err := fromTermJSON(*req.Value)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sess.ClickValue(path, t)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("value or values required"))
		return
	}
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleClickRange(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path  []StepJSON `json:"path"`
		Op    string     `json:"op"`
		Value TermJSON   `json:"value"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := fromTermJSON(req.Value)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.ClickRange(fromPathJSON(req.Path), req.Op, t)
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path []StepJSON `json:"path"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	vals := sess.Model().ExpandPath(sess.State(), fromPathJSON(req.Path))
	out := make([]valJSON, 0, len(vals))
	for _, vc := range vals {
		out = append(out, valJSON{Term: toTermJSON(vc.Value), Count: vc.Count})
	}
	writeJSON(w, map[string]any{"values": out})
}

func (s *Server) handlePivot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		P       string `json:"p"`
		Inverse bool   `json:"inverse,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.P == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("property required"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.SwitchFocus(facet.PathStep{P: rdf.NewIRI(req.P), Inverse: req.Inverse})
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path   []StepJSON `json:"path"`
		Derive string     `json:"derive,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.ClickGroupBy(core.GroupSpec{Path: fromPathJSON(req.Path), Derive: req.Derive})
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path   []StepJSON `json:"path"`
		Derive string     `json:"derive,omitempty"`
		Op     string     `json:"op"`
	}
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !hifun.ValidOp(req.Op) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown aggregate %q", req.Op))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.ClickAggregate(
		core.MeasureSpec{Path: fromPathJSON(req.Path), Derive: req.Derive},
		hifun.Operation{Op: hifun.AggOp(strings.ToUpper(req.Op))},
	)
	writeJSON(w, s.stateLocked(sess))
}

// answerJSON is the wire form of an Answer Frame.
type answerJSON struct {
	GroupCols   []string     `json:"groupCols"`
	MeasureCols []string     `json:"measureCols"`
	Rows        [][]TermJSON `json:"rows"`
	SPARQL      string       `json:"sparql"`
	HIFUN       string       `json:"hifun"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	q, err := sess.BuildHIFUNQuery()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ans, err := sess.RunAnalyticsCtx(ctx)
	dur := time.Since(start)
	// Analytic queries fingerprint by the generated SPARQL when available
	// (it carries the full shape); the HIFUN text stands in on failure.
	shape := "analytics " + q.String()
	rows := 0
	if err == nil {
		shape = sparql.FingerprintQuery(ans.SPARQL)
		rows = len(ans.Rows)
	}
	s.slow.Observe("analytics", q.String(), sparql.FingerprintID(shape), requestID(r), dur, sess.LastTrace())
	s.recordWorkload("analytics", q.String(), shape, dur, rows, err, sess.LastProfile())
	if err != nil {
		queryError(w, err)
		return
	}
	out := answerJSON{
		GroupCols: ans.GroupCols, MeasureCols: ans.MeasureCols,
		SPARQL: ans.SPARQL, HIFUN: q.String(),
	}
	for _, row := range ans.Rows {
		jr := make([]TermJSON, len(row))
		for i, t := range row {
			jr[i] = toTermJSON(t)
		}
		out.Rows = append(out.Rows, jr)
	}
	writeJSON(w, out)
}

func (s *Server) handleLoadAnswer(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	if err := sess.LoadAnswerAsDataset(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleCloseLevel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	if err := sess.CloseLevel(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	if err := sess.Back(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionFor(r)
	sess.Reset()
	writeJSON(w, s.stateLocked(sess))
}

func (s *Server) handleChart(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ans := s.sessionFor(r).Answer()
	if ans == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no answer yet; POST /api/run first"))
		return
	}
	measure := 0
	if m := r.URL.Query().Get("measure"); m != "" {
		if n, err := strconv.Atoi(m); err == nil {
			measure = n
		}
	}
	series, err := viz.AnswerSeries(ans, measure)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var svg string
	switch r.URL.Query().Get("type") {
	case "pie":
		svg = viz.PieChartSVG(series, 420)
	case "column":
		svg = viz.ColumnChartSVG(series, 640, 320)
	case "line":
		svg = viz.LineChartSVG(series, 640, 320)
	case "treemap":
		svg = viz.TreemapSVG(series, 640, 400)
	case "spiral":
		items := make([]viz.SpiralItem, len(series.Values))
		for i := range series.Values {
			items[i] = viz.SpiralItem{Label: series.Labels[i], Value: series.Values[i]}
		}
		svg = viz.SpiralSVG(viz.SpiralLayout{}.Layout(items), 4)
	default:
		svg = viz.BarChartSVG(series, 640)
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, svg)
}

// handleAnswerCSV downloads the current Answer Frame as CSV.
func (s *Server) handleAnswerCSV(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ans := s.sessionFor(r).Answer()
	if ans == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no answer yet; POST /api/run first"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", `attachment; filename="answer.csv"`)
	cw := csv.NewWriter(w)
	cw.Write(ans.Columns())
	for _, row := range ans.Rows {
		rec := make([]string, len(row))
		for i, t := range row {
			rec[i] = t.Value
		}
		cw.Write(rec)
	}
	cw.Flush()
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.graph.Stats()
	writeJSON(w, map[string]int{
		"triples": st.Triples, "terms": st.Terms, "subjects": st.Subjects,
		"predicates": st.Predicates, "classes": st.Classes, "literals": st.Literals,
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, uiHTML)
}

const indexHTML = `<!doctype html>
<html><head><title>RDF-Analytics</title></head>
<body style="font-family: sans-serif; max-width: 48rem; margin: 2rem auto">
<h1>RDF-Analytics</h1>
<p>Interactive analytics over RDF knowledge graphs (EDBT 2023 reproduction).</p>
<p><strong><a href="/ui">Open the interactive GUI</a></strong></p>
<ul>
<li><code>GET /api/state</code> — current faceted-analytics state</li>
<li><code>POST /api/click/class|value|range</code> — faceted transitions</li>
<li><code>POST /api/groupby</code>, <code>POST /api/aggregate</code> — the G and Σ buttons</li>
<li><code>POST /api/run</code> — translate HIFUN → SPARQL, evaluate, return the Answer Frame</li>
<li><code>POST /api/load-answer</code> — explore the answer with faceted search (HAVING / nesting)</li>
<li><code>GET /api/chart?type=bar|pie|column|line|spiral</code> — SVG charts of the answer</li>
<li><code>GET|POST /sparql?query=…</code> — SPARQL 1.1 protocol endpoint</li>
</ul>
</body></html>
`
