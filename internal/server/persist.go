package server

import (
	"errors"
	"net/http"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/store"
)

// Durable-store surface of the server: the manual checkpoint trigger and
// the rdfa_store_* metric family. Both exist only when Config.Store is set.

// handleCheckpoint compacts the WAL into a fresh segment on demand
// (operators call it before planned restarts to make the next replay
// near-empty). Answers the resulting store stats. The phases of the
// checkpoint — snapshot encode, segment write, WAL swap — are recorded as
// spans and the trace offered for retention, so a slow checkpoint is
// inspectable through /api/traces like any slow query.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store
	if st == nil {
		httpError(w, http.StatusConflict, errors.New("server is running without a durable store (-data-dir)"))
		return
	}
	start := time.Now()
	tr := obs.NewTrace("checkpoint")
	tr.SetID(traceIDOf(r))
	if id := requestID(r); id != "" {
		tr.Root().SetAttr("request_id", id)
	}
	err := st.CheckpointTraced(tr.Root())
	tr.Finish()
	outcome, msg := traceOutcome(err)
	s.traces.Offer(obs.TraceCandidate{
		Trace: tr, Kind: "checkpoint",
		FingerprintID: sparql.FingerprintID("checkpoint"),
		Shape:         "checkpoint",
		RequestID:     requestID(r),
		Duration:      time.Since(start),
		Outcome:       outcome, Err: msg,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	stats := st.Stats()
	writeJSON(w, map[string]any{
		"epoch":           stats.Epoch,
		"segmentTriples":  stats.SegmentTriples,
		"tailRecords":     stats.TailRecords,
		"durationSeconds": time.Since(start).Seconds(),
	})
}

// registerStoreMetrics exports the durable-store gauges and counters on the
// default registry, following the repo conventions (counters end in
// _total, durations are _seconds).
func registerStoreMetrics(st *store.Store) {
	reg := obs.Default
	reg.CounterFunc("rdfa_store_wal_records_total", func() float64 {
		return float64(st.Stats().WALRecordsTotal)
	})
	reg.CounterFunc("rdfa_store_wal_bytes_total", func() float64 {
		return float64(st.Stats().WALBytesTotal)
	})
	reg.CounterFunc("rdfa_store_checkpoints_total", func() float64 {
		return float64(st.Stats().Checkpoints)
	})
	reg.CounterFunc("rdfa_store_checkpoint_errors_total", func() float64 {
		return float64(st.Stats().CheckpointErrors)
	})
	reg.CounterFunc("rdfa_store_journal_dropped_total", func() float64 {
		return float64(st.Stats().JournalDropped)
	})
	// 1 while the live graph holds mutations the WAL failed to journal
	// (cleared by the next successful checkpoint).
	reg.GaugeFunc("rdfa_store_diverged", func() float64 {
		if st.Stats().Diverged {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("rdfa_store_segments", func() float64 {
		return float64(st.Stats().Segments)
	})
	reg.GaugeFunc("rdfa_store_segment_triples", func() float64 {
		return float64(st.Stats().SegmentTriples)
	})
	reg.GaugeFunc("rdfa_store_tail_records", func() float64 {
		return float64(st.Stats().TailRecords)
	})
	reg.GaugeFunc("rdfa_store_epoch", func() float64 {
		return float64(st.Stats().Epoch)
	})
	reg.GaugeFunc("rdfa_store_last_checkpoint_seconds", func() float64 {
		return st.Stats().LastCheckpoint.Seconds()
	})
	reg.GaugeFunc("rdfa_store_last_replay_seconds", func() float64 {
		return st.Stats().ReplayTime.Seconds()
	})
	reg.GaugeFunc("rdfa_store_replay_records", func() float64 {
		return float64(st.Stats().ReplayRecords)
	})
	reg.GaugeFunc("rdfa_store_replay_discarded_bytes", func() float64 {
		return float64(st.Stats().ReplayDiscarded)
	})
}
