package rdfanalytics_test

import (
	"fmt"
	"strings"
	"testing"

	rdfanalytics "rdfanalytics"
)

const facadeTTL = `@prefix ex: <http://e/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Laptop a rdfs:Class .
ex:l1 a ex:Laptop ; ex:maker ex:A ; ex:price 100 .
ex:l2 a ex:Laptop ; ex:maker ex:A ; ex:price 300 .
ex:l3 a ex:Laptop ; ex:maker ex:B ; ex:price 500 .
`

func TestFacadeEndToEnd(t *testing.T) {
	g, err := rdfanalytics.LoadTurtle(strings.NewReader(facadeTTL))
	if err != nil {
		t.Fatal(err)
	}
	rdfanalytics.Materialize(g)
	s := rdfanalytics.NewSession(g, "http://e/")
	s.ClickClass(rdfanalytics.IRI("http://e/Laptop"))
	s.ClickGroupBy(rdfanalytics.GroupBySpec("http://e/maker"))
	s.ClickAggregate(rdfanalytics.MeasureOf("http://e/price"), rdfanalytics.Op(rdfanalytics.AVG))
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
	// Snapshot/restore through the facade.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := rdfanalytics.RestoreSession(g, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State().Ext.Len() != 3 {
		t.Fatalf("restored ext = %d", restored.State().Ext.Len())
	}
}

func TestFacadeSPARQLAndUpdate(t *testing.T) {
	g := rdfanalytics.NewGraph()
	ins, del, err := rdfanalytics.Update(g, `PREFIX ex: <http://e/>
INSERT DATA { ex:a ex:p 1 . ex:b ex:p 2 . }`)
	if err != nil || ins != 2 || del != 0 {
		t.Fatalf("update: %d/%d, %v", ins, del, err)
	}
	res, err := rdfanalytics.Select(g, `SELECT (SUM(?v) AS ?s) WHERE { ?x <http://e/p> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["s"].Value != "3" {
		t.Fatalf("sum = %v", res.Rows[0]["s"])
	}
	yes, err := rdfanalytics.Ask(g, `ASK { <http://e/a> ?p ?o }`)
	if err != nil || !yes {
		t.Fatalf("ask: %v %v", yes, err)
	}
	out, err := rdfanalytics.Construct(g, `CONSTRUCT { ?x <http://e/q> ?v } WHERE { ?x <http://e/p> ?v }`)
	if err != nil || out.Len() != 2 {
		t.Fatalf("construct: %v %v", out.Len(), err)
	}
}

func TestFacadeHIFUN(t *testing.T) {
	g, _ := rdfanalytics.LoadTurtle(strings.NewReader(facadeTTL))
	ctx := rdfanalytics.NewContext(g, "http://e/")
	q, err := rdfanalytics.ParseHIFUN("(maker, price, SUM)", "http://e/")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ctx.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
}

// ExampleSession demonstrates the three-click analytics flow.
func ExampleSession() {
	g, _ := rdfanalytics.LoadTurtle(strings.NewReader(facadeTTL))
	rdfanalytics.Materialize(g)
	s := rdfanalytics.NewSession(g, "http://e/")
	s.ClickClass(rdfanalytics.IRI("http://e/Laptop"))
	s.ClickGroupBy(rdfanalytics.GroupBySpec("http://e/maker"))
	s.ClickAggregate(rdfanalytics.MeasureOf("http://e/price"), rdfanalytics.Op(rdfanalytics.SUM))
	ans, _ := s.RunAnalytics()
	for _, row := range ans.Rows {
		fmt.Println(row[0].LocalName(), row[1].Value)
	}
	// Output:
	// A 400
	// B 500
}
