// Command datagen emits the synthetic datasets of the reproduction as
// Turtle or N-Triples.
//
// Usage:
//
//	datagen -data products -scale 1000 -format ttl > products.ttl
package main

import (
	"flag"
	"log"
	"os"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

func main() {
	data := flag.String("data", "products-small", "dataset: products[-small], invoices[-small], stats")
	scale := flag.Int("scale", 0, "dataset scale for generated datasets")
	format := flag.String("format", "ttl", "output format: ttl, nt, rdfb (binary snapshot)")
	flag.Parse()
	g, ns, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "nt":
		err = rdf.WriteNTriples(os.Stdout, g)
	case "rdfb":
		err = g.WriteBinary(os.Stdout)
	default:
		err = rdf.WriteTurtle(os.Stdout, g, map[string]string{"ex": ns})
	}
	if err != nil {
		log.Fatal(err)
	}
}
