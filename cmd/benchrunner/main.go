// Command benchrunner regenerates every evaluation artifact of the paper
// (the experiment index E1–E14 of DESIGN.md): translation examples, facet
// trees, the §5.1 interaction walk-throughs, the efficiency tables
// (Tables 6.1–6.2), the OLAP correspondence (Fig 7.1–7.2), the simulated
// user study (Figs 8.1–8.2), the evaluation-strategy ablation, the
// spiral/3D layouts, the planner feedback-convergence run, and the
// hot-fingerprint herd (answer cache + singleflight vs uncached).
//
// Usage:
//
//	benchrunner -all              run everything
//	benchrunner -exp E5 -quick    one experiment, reduced scales
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"time"

	"rdfanalytics/internal/bench"
	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/par"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/userstudy"
	"rdfanalytics/internal/viz"
)

var (
	quick       = flag.Bool("quick", false, "reduced scales / repetitions")
	outDir      = flag.String("out", ".", "directory for SVG/JSON artifacts (E11)")
	jsonOut     = flag.String("json", "BENCH_results.json", "machine-readable results file (empty to disable)")
	historyOut  = flag.String("history", "BENCH_history.json", "cumulative run-history file the run is appended to (empty to disable)")
	parallelism = flag.Int("parallelism", 0, "evaluator worker pool (0 = GOMAXPROCS, 1 = sequential)")
)

// records accumulates the machine-readable measurements of the timing
// experiments (E5, E6, E10) for the -json output.
var records []bench.Record

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E14)")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()
	// Sample runtime telemetry (heap, GC, goroutines) across the whole run;
	// the end-of-run summary rides into BENCH_history.json so regressions
	// correlate with memory/GC pressure, not just wall time.
	obs.RegisterRuntimeMetrics(obs.Default)
	sampler := obs.NewSampler(obs.Default, nil, nil,
		obs.TSDBConfig{Interval: time.Second}).Start()
	defer sampler.Close()
	experiments := map[string]func() error{
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11, "E12": e12,
		"E13": e13, "E14": e14,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	switch {
	case *all:
		for _, id := range order {
			header(id)
			if err := experiments[id](); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
		}
	case *exp != "":
		fn, ok := experiments[strings.ToUpper(*exp)]
		if !ok {
			log.Fatalf("unknown experiment %q (want E1..E14)", *exp)
		}
		header(strings.ToUpper(*exp))
		if err := fn(); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut != "" && len(records) > 0 {
		path := *jsonOut
		if !strings.ContainsAny(path, "/") {
			path = *outDir + "/" + path
		}
		if err := bench.WriteJSON(path, records); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Println("\nwrote", path)
	}
	if *historyOut != "" && len(records) > 0 {
		path := *historyOut
		if !strings.ContainsAny(path, "/") {
			path = *outDir + "/" + path
		}
		sampler.Tick(time.Now())
		entry := bench.HistoryEntry{
			When: time.Now().UTC(),
			Git:  gitDescribe(),
			Config: map[string]any{
				"exp": strings.ToUpper(*exp), "all": *all,
				"quick": *quick, "parallelism": *parallelism,
			},
			Records:   records,
			Telemetry: sampler.TelemetrySummary(),
		}
		if err := bench.AppendHistory(path, entry); err != nil {
			log.Fatalf("appending %s: %v", path, err)
		}
		fmt.Println("appended run to", path)
	}
}

// gitDescribe identifies the working tree for the run history; empty when
// git is unavailable or the directory is not a repository.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func header(id string) {
	fmt.Printf("\n================ %s ================\n", id)
}

// E1 — the running-example SPARQL queries of Fig 1.3 and Fig 2.6.
func e1() error {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		return err
	}
	fig13 := `PREFIX ex: <` + ns + `>
SELECT ?m (AVG(?p) AS ?avgprice)
WHERE {
  ?s a ex:Laptop. ?s ex:manufacturer ?m. ?m ex:origin ex:USA.
  ?s ex:price ?p. ?s ex:USBPorts ?u. ?s ex:hardDrive ?hd.
  ?hd a ex:SSD. ?hd ex:manufacturer ?hdm. ?hdm ex:origin ?hdmc.
  ?hdmc ex:locatedAt ex:Asia.
  FILTER (?u >= 2).
  ?s ex:releaseDate ?rd .
  FILTER ( ?rd >= "2021-01-01"^^xsd:date && ?rd <= "2021-12-31"^^xsd:date)
} GROUP BY ?m`
	fig26 := `PREFIX ex: <` + ns + `>
SELECT ?m (COUNT(?p) AS ?total_products)
WHERE { ?p a ex:Product. ?p ex:manufacturer ?m. } GROUP BY ?m`
	for name, q := range map[string]string{"Fig 1.3": fig13, "Fig 2.6": fig26} {
		res, err := sparql.Select(g, q)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Sort()
		fmt.Printf("-- %s --\n%s\n", name, res)
	}
	return nil
}

// E2 — the HIFUN→SPARQL translation cases of §4.2.
func e2() error {
	_, ns, err := datagen.Load("invoices-small", 0)
	if err != nil {
		return err
	}
	ctx := hifun.NewContext(nil, ns)
	cases := []string{
		"(takesPlaceAt, inQuantity, SUM)",
		"(takesPlaceAt/branch1, inQuantity, SUM)",
		"(takesPlaceAt, inQuantity/>=1, SUM)",
		"(takesPlaceAt, inQuantity, SUM/>1000)",
		"(brand.delivers, inQuantity, SUM)",
		"(month.hasDate, inQuantity, SUM)",
		"(takesPlaceAt & delivers, inQuantity, SUM)",
		"(takesPlaceAt & (brand.delivers)/month.hasDate=1, inQuantity/>=2, SUM/>1000)",
	}
	for _, src := range cases {
		q, err := hifun.Parse(src, ns)
		if err != nil {
			return err
		}
		out, err := ctx.Translator().Translate(q)
		if err != nil {
			return err
		}
		fmt.Printf("-- HIFUN: %s\n%s\n\n", src, out)
	}
	return nil
}

// E3 — the transition-marker trees of Fig 5.4 / 5.5.
func e3() error {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		return err
	}
	s := core.NewSession(g, ns)
	fmt.Println("-- Fig 5.4 (a,b): class-based transition markers --")
	fmt.Print(s.ComputeUIState(0, false).RenderText())
	s.ClickClass(rdf.NewIRI(ns + "Laptop"))
	fmt.Println("\n-- Fig 5.4 (c): property-based markers for class Laptop --")
	fmt.Print(s.ComputeUIState(0, false).RenderText())
	fmt.Println("\n-- Fig 5.5 (b): path expansions --")
	for _, path := range []facet.Path{
		{{P: rdf.NewIRI(ns + "manufacturer")}, {P: rdf.NewIRI(ns + "origin")}},
		{{P: rdf.NewIRI(ns + "hardDrive")}, {P: rdf.NewIRI(ns + "manufacturer")}},
		{{P: rdf.NewIRI(ns + "hardDrive")}, {P: rdf.NewIRI(ns + "manufacturer")}, {P: rdf.NewIRI(ns + "origin")}},
	} {
		fmt.Printf("  by %s:\n", path)
		for _, vc := range s.Model().ExpandPath(s.State(), path) {
			fmt.Printf("    %s (%d)\n", vc.Value.LocalName(), vc.Count)
		}
	}
	return nil
}

// E4 — the four interaction walk-throughs of §5.1, end to end.
func e4() error {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		return err
	}
	pe := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	// Example 1.
	s := core.NewSession(g.Clone(), ns)
	s.ClickClass(pe("Laptop"))
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, ">=", rdf.NewTyped("2021-01-01", rdf.XSDDate))
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, "<=", rdf.NewTyped("2021-12-31", rdf.XSDDate))
	s.ClickValue(facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}, pe("USA"))
	s.ClickValueSet(facet.Path{{P: pe("hardDrive")}}, []rdf.Term{pe("SSD1"), pe("SSD2")})
	s.ClickValue(facet.Path{{P: pe("USBPorts")}}, rdf.NewInteger(2))
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		return err
	}
	fmt.Println("-- Example 1 (AVG, no GROUP BY) --")
	fmt.Print(ans.String())
	// Example 2.
	s = core.NewSession(g.Clone(), ns)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	if ans, err = s.RunAnalytics(); err != nil {
		return err
	}
	fmt.Println("\n-- Example 2 (COUNT, GROUP BY path) --")
	fmt.Print(ans.String())
	// Example 3.
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	if ans, err = s.RunAnalytics(); err != nil {
		return err
	}
	fmt.Println("\n-- Example 3 (range filter) --")
	fmt.Print(ans.String())
	// Example 4.
	s = core.NewSession(g.Clone(), ns)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("releaseDate")}}, Derive: "YEAR"})
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err = s.RunAnalytics()
	if err != nil {
		return err
	}
	fmt.Println("\n-- Example 4 (AVG by company and year) --")
	fmt.Print(ans.String())
	if err := s.LoadAnswerAsDataset(); err != nil {
		return err
	}
	s.ClickRange(facet.Path{{P: rdf.NewIRI(hifun.AnswerNS + ans.MeasureCols[0])}}, ">", rdf.NewDecimal(900))
	fmt.Printf("   … loaded as dataset, HAVING avg>900 leaves %d group(s)\n", s.State().Ext.Len())
	return nil
}

func benchConfig() bench.Config {
	cfg := bench.Config{Parallelism: *parallelism}
	if *quick {
		cfg.Scales = []bench.Scale{{Name: "5k", Laptops: 350}, {Name: "20k", Laptops: 1450}}
		cfg.Runs = 3
		cfg.Workers = 4
	}
	return cfg
}

// E5 — Table 6.1 (peak hours / contended endpoint).
func e5() error {
	results, err := bench.Run(true, benchConfig())
	if err != nil {
		return err
	}
	bench.WriteTable(os.Stdout, "Table 6.1 — efficiency under load (peak)", results)
	records = append(records, bench.Records("E5", results)...)
	return nil
}

// E6 — Table 6.2 (off-peak / uncontended).
func e6() error {
	results, err := bench.Run(false, benchConfig())
	if err != nil {
		return err
	}
	bench.WriteTable(os.Stdout, "Table 6.2 — efficiency uncontended (off-peak)", results)
	records = append(records, bench.Records("E6", results)...)
	return nil
}

// E7 — the OLAP correspondence of Fig 7.1–7.2.
func e7() error {
	g, ns, err := datagen.Load("invoices-small", 0)
	if err != nil {
		return err
	}
	ie := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	s := core.NewSession(g, ns)
	s.ClickClass(ie("Invoice"))
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	fine, err := s.RunAnalytics()
	if err != nil {
		return err
	}
	fmt.Println("-- cube: SUM(quantity) by (branch, product) --")
	fmt.Print(fine.String())
	pt, err := core.Pivot(fine, false, 0)
	if err != nil {
		return err
	}
	fmt.Println("\n-- pivot --")
	fmt.Print(pt.String())
	coarse, err := s.RollUp(1)
	if err != nil {
		return err
	}
	fmt.Println("\n-- roll-up to (branch) [Fig 7.2 upward] --")
	fmt.Print(coarse.String())
	fine2, err := s.DrillDown(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}, {P: ie("brand")}}})
	if err != nil {
		return err
	}
	fmt.Println("\n-- drill-down to (branch, brand) [Fig 7.2 downward] --")
	fmt.Print(fine2.String())
	sliced, err := s.Slice(facet.Path{{P: ie("takesPlaceAt")}}, ie("branch3"))
	if err != nil {
		return err
	}
	fmt.Println("\n-- slice branch=branch3 --")
	fmt.Print(sliced.String())
	return nil
}

func studyConfig() userstudy.Config {
	cfg := userstudy.Config{UsersPerLevel: 10, Seed: 2023}
	if *quick {
		cfg.UsersPerLevel = 4
	}
	return cfg
}

// E8 — Fig 8.1: per-task completion and rating.
func e8() error {
	results, err := userstudy.Run(studyConfig())
	if err != nil {
		return err
	}
	userstudy.WriteFig81(os.Stdout, results)
	fmt.Println("\n-- per-expertise breakdown --")
	userstudy.WriteByExpertise(os.Stdout, results)
	return nil
}

// E9 — Fig 8.2: aggregate completion and rating.
func e9() error {
	results, err := userstudy.Run(studyConfig())
	if err != nil {
		return err
	}
	userstudy.WriteFig82(os.Stdout, results)
	return nil
}

// E10 — evaluation-strategy ablation (Tables 5.1 vs 5.2 / Fig 8.3).
func e10() error {
	laptops := 2000
	if *quick {
		laptops = 500
	}
	g := datagen.Products(datagen.ProductsConfig{Laptops: laptops, Companies: 12, Seed: 1, Materialize: true})
	ns := datagen.ExampleNS
	m := facet.NewModel(g)
	m.Parallelism = *parallelism
	s0 := m.ClickClass(m.Start(), rdf.NewIRI(ns+"Laptop"))
	path := facet.Path{{P: rdf.NewIRI(ns + "manufacturer")}, {P: rdf.NewIRI(ns + "origin")}}
	vals := m.ExpandPath(s0, path)
	if len(vals) == 0 {
		return fmt.Errorf("no expansion values")
	}
	target := vals[0].Value
	iters := 50
	if *quick {
		iters = 15
	}
	start := time.Now()
	var st *facet.State
	for i := 0; i < iters; i++ {
		st = m.ClickValue(s0, path, target)
	}
	setDur := time.Since(start) / time.Duration(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := st.Int.Answer(g); err != nil {
			return err
		}
	}
	sparqlDur := time.Since(start) / time.Duration(iters)
	fmt.Printf("state transition over %d laptops (%d triples), %d iterations:\n", laptops, g.Len(), iters)
	fmt.Printf("  in-memory set evaluation (Table 5.1): %v per transition\n", setDur.Round(time.Microsecond))
	fmt.Printf("  SPARQL-only evaluation   (Table 5.2): %v per transition\n", sparqlDur.Round(time.Microsecond))
	fmt.Printf("  extension size agrees: %d objects\n", st.Ext.Len())
	records = append(records,
		bench.Record{Experiment: "E10", Label: "set evaluation", Triples: g.Len(),
			Parallelism: par.Workers(*parallelism), Runs: iters, NsPerOp: setDur.Nanoseconds()},
		bench.Record{Experiment: "E10", Label: "sparql evaluation", Triples: g.Len(),
			Parallelism: par.Workers(*parallelism), Runs: iters, NsPerOp: sparqlDur.Nanoseconds()})
	return nil
}

// E11 — spiral and 3D-city layouts (§6.3, Figs 6.4–6.5).
func e11() error {
	rng := rand.New(rand.NewSource(1))
	items := make([]viz.SpiralItem, 64)
	for i := range items {
		items[i] = viz.SpiralItem{
			Label: fmt.Sprintf("v%d", i),
			Value: float64(int(1000 / float64(i+1))), // power-law-ish
		}
	}
	_ = rng
	placed := viz.SpiralLayout{}.Layout(items)
	minX, minY, maxX, maxY := viz.Bounds(placed)
	fmt.Printf("spiral layout: %d values placed, bounding box %.0fx%.0f, center value %q\n",
		len(placed), maxX-minX, maxY-minY, placed[0].Label)
	spiralPath := *outDir + "/spiral.svg"
	if err := os.WriteFile(spiralPath, []byte(viz.SpiralSVG(placed, 4)), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", spiralPath)
	// 3D city over the country statistics dataset.
	g, ns, err := datagen.Load("stats", 0)
	if err != nil {
		return err
	}
	var entities []viz.Entity3D
	for _, c := range rdf.InstancesOf(g, rdf.NewIRI(ns+"Country")) {
		e := viz.Entity3D{Label: c.LocalName(), Features: map[string]float64{}}
		for _, f := range []string{"cases", "deaths", "recovered"} {
			if v, ok := g.Object(c, rdf.NewIRI(ns+f)).Float(); ok {
				e.Features[f] = v / 1e6
			}
		}
		entities = append(entities, e)
	}
	scene := viz.BuildCity(entities, viz.CityConfig{})
	fmt.Printf("3D city: %d buildings, %d features\n", len(scene.Buildings), len(scene.Features))
	cityPath := *outDir + "/city.svg"
	if err := os.WriteFile(cityPath, []byte(scene.IsometricSVG(3)), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", cityPath)
	data, err := scene.JSON()
	if err != nil {
		return err
	}
	jsonPath := *outDir + "/city.json"
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", jsonPath)
	return nil
}

// E12 — adaptive-planner feedback convergence: the workload replays twice
// over a shared feedback store; the second pass plans from the first pass's
// observed cardinalities, so its worst q-error must fall while p95 latency
// does not regress. The per-pass q-error rides into BENCH_history.json via
// the record labels.
func e12() error {
	cfg := bench.PlannerConfig{Seed: 1}
	if *quick {
		cfg.Laptops = 500
		cfg.Runs = 3
	}
	passes, err := bench.RunPlannerFeedback(cfg)
	if err != nil {
		return err
	}
	bench.WritePlannerTable(os.Stdout, passes)
	records = append(records, bench.PlannerRecords("E12", passes)...)
	return nil
}

// E13 — overload-resilient serving: a herd of concurrent clients replays a
// small hot query set against an uncached server and against the resilience
// stack (fingerprint answer cache + singleflight collapse). The acceptance
// bar is cached throughput at least 5× uncached on the hot workload.
func e13() error {
	cfg := bench.HerdConfig{Seed: 1}
	if *quick {
		cfg.Laptops = 500
		cfg.Clients = 8
		cfg.Requests = 60
	}
	scenarios, err := bench.RunHerd(cfg)
	if err != nil {
		return err
	}
	bench.WriteHerdTable(os.Stdout, cfg, scenarios)
	records = append(records, bench.HerdRecords("E13", scenarios)...)
	return nil
}

// E14 — durable-store restart: cold start from Turtle (parse + materialize)
// vs restore from checkpoint segment + WAL tail replay. The acceptance bar
// is restore at least 5× faster than the re-parse.
func e14() error {
	cfg := bench.StoreConfig{Seed: 1}
	if *quick {
		cfg.Laptops = 500
		cfg.Updates = 100
		cfg.Runs = 3
	}
	res, err := bench.RunStoreRestart(cfg)
	if err != nil {
		return err
	}
	bench.WriteStoreTable(os.Stdout, res)
	records = append(records, bench.StoreRecords("E14", res)...)
	return nil
}
