package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAllExperimentsRun executes every experiment generator in quick mode:
// the end-to-end guarantee that `benchrunner -all` keeps regenerating every
// table and figure.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	*quick = true
	dir := t.TempDir()
	*outDir = dir
	// Capture stdout noise away from the test log.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	experiments := map[string]func() error{
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11,
	}
	for id, fn := range experiments {
		if err := fn(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	// E11 wrote its artifacts.
	for _, f := range []string{"spiral.svg", "city.svg", "city.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s missing: %v", f, err)
		}
	}
}
