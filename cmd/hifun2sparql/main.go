// Command hifun2sparql translates a textual HIFUN analytic query to SPARQL
// (the Algorithm 1–4 translator of Chapter 4) and optionally executes it.
//
// Usage:
//
//	hifun2sparql -ns http://example.org/invoices# '(takesPlaceAt, inQuantity, SUM)'
//	hifun2sparql -data invoices-small -run '(brand.delivers, inQuantity, SUM/>100)'
package main

import (
	"flag"
	"fmt"
	"log"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func main() {
	ns := flag.String("ns", "", "attribute namespace (defaults to the dataset's)")
	data := flag.String("data", "invoices-small", "dataset spec for -run / default namespace")
	scale := flag.Int("scale", 0, "dataset scale")
	root := flag.String("root", "", "root class local name for the analysis context")
	run := flag.Bool("run", false, "execute the query and print the answer")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("hifun2sparql: exactly one HIFUN query expected, e.g. '(takesPlaceAt, inQuantity, SUM)'")
	}
	g, dataNS, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *ns == "" {
		*ns = dataNS
	}
	q, err := hifun.Parse(flag.Arg(0), *ns)
	if err != nil {
		log.Fatal(err)
	}
	ctx := hifun.NewContext(g, *ns)
	if *root != "" {
		ctx = ctx.WithRoot(rdf.NewIRI(*ns + *root))
	}
	src, err := ctx.Translator().Translate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# HIFUN:", q)
	fmt.Println(src)
	if *run {
		ans, err := ctx.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(ans.String())
	}
}
