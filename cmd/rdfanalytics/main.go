// Command rdfanalytics runs the RDF-Analytics HTTP server: a SPARQL
// endpoint plus the JSON API of the faceted-analytics interaction model
// (the system of Chapter 6).
//
// Usage:
//
//	rdfanalytics [-addr :8080] [-data products|invoices|stats|file.ttl] [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "products-small", "dataset: products[-small], invoices[-small], stats, or a .ttl/.nt file")
	scale := flag.Int("scale", 0, "dataset scale for generated datasets (0 = default)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this (e.g. 250ms; 0 disables)")
	debug := flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()
	g, ns, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("rdf-analytics: dataset %q loaded: %d triples, %d subjects, %d predicates, %d classes\n",
		*data, st.Triples, st.Subjects, st.Predicates, st.Classes)
	fmt.Printf("rdf-analytics: listening on %s (API at /api, SPARQL at /sparql, metrics at /metrics)\n", *addr)
	if *slowQuery > 0 {
		fmt.Printf("rdf-analytics: logging queries slower than %s\n", *slowQuery)
	}
	if *debug {
		fmt.Println("rdf-analytics: pprof enabled at /debug/pprof/")
	}
	srv := server.NewWithConfig(g, ns, server.Config{
		SlowQuery: *slowQuery,
		Debug:     *debug,
	})
	log.Fatal(http.ListenAndServe(*addr, srv))
}
