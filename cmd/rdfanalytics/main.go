// Command rdfanalytics runs the RDF-Analytics HTTP server: a SPARQL
// endpoint plus the JSON API of the faceted-analytics interaction model
// (the system of Chapter 6).
//
// Usage:
//
//	rdfanalytics [-addr :8080] [-data products|invoices|stats|file.ttl] [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "products-small", "dataset: products[-small], invoices[-small], stats, or a .ttl/.nt file")
	scale := flag.Int("scale", 0, "dataset scale for generated datasets (0 = default)")
	flag.Parse()
	g, ns, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("rdf-analytics: dataset %q loaded: %d triples, %d subjects, %d predicates, %d classes\n",
		*data, st.Triples, st.Subjects, st.Predicates, st.Classes)
	fmt.Printf("rdf-analytics: listening on %s (API at /api, SPARQL at /sparql)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(g, ns)))
}
