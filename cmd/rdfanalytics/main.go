// Command rdfanalytics runs the RDF-Analytics HTTP server: a SPARQL
// endpoint plus the JSON API of the faceted-analytics interaction model
// (the system of Chapter 6).
//
// Usage:
//
//	rdfanalytics [-addr :8080] [-data products|invoices|stats|file.ttl] [-scale N]
//	             [-data-dir DIR] [-wal-sync off|batch|always] [-checkpoint-interval 5m]
//
// With -data-dir the graph is durable: the first boot parses the dataset
// and checkpoints it into DIR; later boots restore from the segment + WAL
// (no re-parse) and every acknowledged update survives kill -9.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/server"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "products-small", "dataset: products[-small], invoices[-small], stats, or a .ttl/.nt file")
	scale := flag.Int("scale", 0, "dataset scale for generated datasets (0 = default)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this (e.g. 250ms; 0 disables)")
	debug := flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query wall-clock deadline (0 disables)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "POST request body cap in bytes (negative disables)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "expire interaction sessions idle longer than this (0 disables)")
	maxRows := flag.Int("max-intermediate-rows", 0, "row budget on intermediate binding sets (0 = unlimited)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "in-flight request drain window on SIGINT/SIGTERM")
	sampleInterval := flag.Duration("sample-interval", 10*time.Second, "telemetry sampling period for /api/timeseries and SLO evaluation (0 disables)")
	sloAvailability := flag.Float64("slo-availability", 0.999, "availability SLO target in (0,1); 0 disables")
	sloLatency := flag.Float64("slo-latency", 0.95, "latency SLO target in (0,1); 0 disables")
	sloLatencyThreshold := flag.Duration("slo-latency-threshold", 250*time.Millisecond, "latency SLO threshold (requests faster than this count as good)")
	sloShapeLatency := flag.Float64("slo-shape-latency", 0, "per-query-shape latency SLO target in (0,1); 0 disables")
	sloShapeThreshold := flag.Duration("slo-shape-latency-threshold", time.Second, "per-query-shape latency SLO threshold")
	cacheSize := flag.Int64("cache-size", 64<<20, "fingerprint answer cache size in bytes (0 disables)")
	maxConcurrent := flag.Int("max-concurrent", 64, "max concurrently executing queries (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 128, "admission wait-queue depth; overflow sheds with 503 + Retry-After")
	staleWindow := flag.Duration("stale-window", 30*time.Second, "degraded-mode staleness window for serving cached answers of older graph versions (0 disables)")
	dataDir := flag.String("data-dir", "", "durable storage directory (WAL + segment files); empty runs in-memory only")
	walSync := flag.String("wal-sync", "batch", "WAL durability: off (no fsync), batch (fsync per update ack), always (fsync per record)")
	checkpointInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "background WAL compaction period when -data-dir is set (0 disables)")
	traceMax := flag.Int("trace-retention", 0, "max completed traces the tail sampler retains for /api/traces (0 = default 512, negative disables)")
	traceBytes := flag.Int64("trace-retention-bytes", 0, "byte bound on retained traces (0 = default 8MiB)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Printf("rdfanalytics %s (%s)\n", obs.Version(), runtime.Version())
		os.Exit(0)
	}
	var (
		g   *rdf.Graph
		ns  string
		dst *store.Store
	)
	if *dataDir != "" {
		mode, err := store.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		dst, err = store.Open(store.Options{Dir: *dataDir, Sync: mode, CheckpointEvery: *checkpointInterval})
		if err != nil {
			log.Fatal(err)
		}
		defer dst.Close()
		if dst.Empty() {
			// First boot: parse the dataset once, then checkpoint it so
			// every later start replays from the segment instead.
			loaded, loadedNS, err := datagen.Load(*data, *scale)
			if err != nil {
				log.Fatal(err)
			}
			if err := dst.Bootstrap(loaded); err != nil {
				log.Fatal(err)
			}
			g, ns = dst.Graph(), loadedNS
			fmt.Printf("rdf-analytics: bootstrapped %s from dataset %q (wal-sync=%s)\n", *dataDir, *data, mode)
		} else {
			g, ns = dst.Graph(), datagen.GuessNamespace(dst.Graph())
			sst := dst.Stats()
			fmt.Printf("rdf-analytics: restored %s: epoch %d, %d segment triples, %d WAL records replayed in %s (wal-sync=%s)\n",
				*dataDir, sst.Epoch, sst.SegmentTriples, sst.ReplayRecords, sst.ReplayTime.Round(time.Millisecond), mode)
		}
	} else {
		var err error
		g, ns, err = datagen.Load(*data, *scale)
		if err != nil {
			log.Fatal(err)
		}
	}
	st := g.Stats()
	fmt.Printf("rdf-analytics: dataset %q loaded: %d triples, %d subjects, %d predicates, %d classes\n",
		*data, st.Triples, st.Subjects, st.Predicates, st.Classes)
	fmt.Printf("rdf-analytics: listening on %s (API at /api, SPARQL at /sparql, metrics at /metrics)\n", *addr)
	if *slowQuery > 0 {
		fmt.Printf("rdf-analytics: logging queries slower than %s\n", *slowQuery)
	}
	if *queryTimeout > 0 {
		fmt.Printf("rdf-analytics: query timeout %s\n", *queryTimeout)
	}
	if *debug {
		fmt.Println("rdf-analytics: pprof enabled at /debug/pprof/")
	}
	srv := server.NewWithConfig(g, ns, server.Config{
		SlowQuery:      *slowQuery,
		Debug:          *debug,
		QueryTimeout:   *queryTimeout,
		MaxBodyBytes:   *maxBody,
		SessionTTL:     *sessionTTL,
		Limits:         sparql.Limits{MaxIntermediateRows: *maxRows},
		SampleInterval: *sampleInterval,
		CacheBytes:     *cacheSize,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		StaleWindow:    *staleWindow,
		SLO: server.SLOConfig{
			AvailabilityTarget:    *sloAvailability,
			LatencyTarget:         *sloLatency,
			LatencyThreshold:      *sloLatencyThreshold,
			ShapeLatencyTarget:    *sloShapeLatency,
			ShapeLatencyThreshold: *sloShapeThreshold,
		},
		Store: dst,
		TraceRetention: obs.TraceStoreConfig{
			Disabled:  *traceMax < 0,
			MaxTraces: max(*traceMax, 0),
			MaxBytes:  *traceBytes,
		},
	})
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := server.Run(ctx, *addr, srv, *grace); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rdf-analytics: shut down cleanly")
}
