// Command voidstats profiles an RDF dataset and publishes the statistics
// in RDF using the VoID vocabulary (the category-C4 capability of the
// paper's survey), optionally reporting the degree distribution and its
// power-law fit (category C5).
//
// Usage:
//
//	voidstats -data products -scale 1000              # VoID as Turtle
//	voidstats -data file.ttl -degrees                 # + degree analysis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/stats"
)

func main() {
	data := flag.String("data", "products-small", "dataset spec (see datagen.Load)")
	scale := flag.Int("scale", 0, "dataset scale")
	dataset := flag.String("iri", "http://example.org/dataset", "IRI for the described dataset")
	degrees := flag.Bool("degrees", false, "print degree distribution and power-law fit to stderr")
	flag.Parse()
	g, _, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	profile := stats.Compute(g)
	vd := profile.ToVoID(*dataset)
	if err := rdf.WriteTurtle(os.Stdout, vd, map[string]string{"void": stats.VoIDNS}); err != nil {
		log.Fatal(err)
	}
	if *degrees {
		dist := stats.DegreeDistribution(g)
		alpha, n := stats.PowerLawFit(dist, 2)
		fmt.Fprintf(os.Stderr, "degree distribution: %d distinct degrees, top: %v\n",
			len(dist), stats.TopK(dist, 5))
		if n > 0 && alpha > 0 {
			fmt.Fprintf(os.Stderr, "power-law fit (x>=2): alpha = %.3f over %d resources\n", alpha, n)
		} else {
			fmt.Fprintln(os.Stderr, "power-law fit: insufficient data")
		}
	}
}
