// Command sparqlrun evaluates a SPARQL query against a dataset and prints
// the results.
//
// Usage:
//
//	sparqlrun -data products-small 'SELECT ?s WHERE { ?s a <...> }'
//	sparqlrun -data file.ttl -f query.rq -format csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func main() {
	data := flag.String("data", "products-small", "dataset spec (see datagen.Load)")
	scale := flag.Int("scale", 0, "dataset scale")
	file := flag.String("f", "", "read the query from this file instead of argv")
	format := flag.String("format", "table", "output format: table, csv, json")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of running the query")
	explainAnalyze := flag.Bool("explain-analyze", false,
		"run the query and print the operator profile: per-operator wall time, rows, est vs actual cardinality with q-error (SELECT only)")
	trace := flag.Bool("trace", false, "print the per-phase timing tree after the results (SELECT only)")
	noReorder := flag.Bool("no-reorder", false, "evaluate BGPs in textual order (join-ordering ablation)")
	plannerName := flag.String("planner", "auto", "BGP join-order planner: auto, greedy, dp or feedback")
	repeat := flag.Int("repeat", 1, "run the query this many times (with -planner=feedback, later passes plan from observed cardinalities)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Printf("sparqlrun %s (%s)\n", obs.Version(), runtime.Version())
		return
	}
	planner, err := sparql.ParsePlannerMode(*plannerName)
	if err != nil {
		log.Fatalf("sparqlrun: %v", err)
	}
	var query string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		query = string(b)
	case flag.NArg() > 0:
		query = flag.Arg(0)
	default:
		log.Fatal("sparqlrun: no query given (argument or -f file)")
	}
	g, _, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	planOpts := sparql.Options{NoReorder: *noReorder, Planner: planner}
	if *explain {
		plan, err := sparql.ExplainOpts(g, query, planOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan)
		return
	}
	if *explainAnalyze {
		tree, err := sparql.ExplainAnalyze(g, query, planOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tree)
		return
	}
	q, err := sparql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	switch q.Form {
	case sparql.FormSelect:
		if *repeat < 1 {
			*repeat = 1
		}
		// With -repeat, a per-process feedback store lets later passes plan
		// from the cardinalities the first pass observed (the closed loop
		// the server runs continuously).
		var fb *sparql.FeedbackStore
		if *repeat > 1 && planner != sparql.PlannerGreedy && !*noReorder {
			fb = sparql.NewFeedbackStore()
		}
		var tr *obs.Trace
		var res *sparql.Results
		for pass := 1; pass <= *repeat; pass++ {
			tr = nil
			if *trace {
				tr = obs.NewTrace("query")
			}
			opts := planOpts
			opts.Trace = tr
			if fb != nil {
				opts.Feedback = fb
				opts.FingerprintID = sparql.FingerprintID(sparql.Fingerprint(q))
				opts.Profile = sparql.NewProfile("query")
			}
			start := time.Now()
			res, err = sparql.ExecSelectOpts(g, q, opts)
			elapsed := time.Since(start)
			tr.Finish()
			if err != nil {
				log.Fatal(err)
			}
			if *repeat > 1 {
				fmt.Fprintf(os.Stderr, "pass %d/%d: %s, max q-error %.2f\n",
					pass, *repeat, elapsed.Round(time.Microsecond), opts.Profile.MaxQError())
			}
		}
		if len(q.OrderBy) == 0 {
			// Canonical order for deterministic display — but an ORDER BY
			// query is already in its answer order; re-sorting would undo it.
			res.Sort()
		}
		switch *format {
		case "csv":
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		case "json":
			if err := res.WriteJSON(os.Stdout); err != nil {
				log.Fatal(err)
			}
		default:
			fmt.Print(res.String())
			fmt.Printf("(%d rows)\n", res.Len())
		}
		if tr != nil {
			fmt.Fprint(os.Stderr, "\n"+tr.Tree())
		}
	case sparql.FormAsk:
		ok, err := sparql.Ask(g, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ok)
	case sparql.FormConstruct:
		out, err := sparql.Construct(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	case sparql.FormDescribe:
		out, err := sparql.Describe(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	}
}
