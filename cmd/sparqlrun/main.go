// Command sparqlrun evaluates a SPARQL query against a dataset and prints
// the results.
//
// Usage:
//
//	sparqlrun -data products-small 'SELECT ?s WHERE { ?s a <...> }'
//	sparqlrun -data file.ttl -f query.rq -format csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func main() {
	data := flag.String("data", "products-small", "dataset spec (see datagen.Load)")
	scale := flag.Int("scale", 0, "dataset scale")
	file := flag.String("f", "", "read the query from this file instead of argv")
	format := flag.String("format", "table", "output format: table, csv, json")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of running the query")
	explainAnalyze := flag.Bool("explain-analyze", false,
		"run the query and print the operator profile: per-operator wall time, rows, est vs actual cardinality with q-error (SELECT only)")
	trace := flag.Bool("trace", false, "print the per-phase timing tree after the results (SELECT only)")
	flag.Parse()
	var query string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		query = string(b)
	case flag.NArg() > 0:
		query = flag.Arg(0)
	default:
		log.Fatal("sparqlrun: no query given (argument or -f file)")
	}
	g, _, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		plan, err := sparql.Explain(g, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan)
		return
	}
	if *explainAnalyze {
		tree, err := sparql.ExplainAnalyze(g, query, sparql.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tree)
		return
	}
	q, err := sparql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	switch q.Form {
	case sparql.FormSelect:
		var tr *obs.Trace
		if *trace {
			tr = obs.NewTrace("query")
		}
		res, err := sparql.ExecSelectOpts(g, q, sparql.Options{Trace: tr})
		tr.Finish()
		if err != nil {
			log.Fatal(err)
		}
		if len(q.OrderBy) == 0 {
			// Canonical order for deterministic display — but an ORDER BY
			// query is already in its answer order; re-sorting would undo it.
			res.Sort()
		}
		switch *format {
		case "csv":
			if err := res.WriteCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		case "json":
			if err := res.WriteJSON(os.Stdout); err != nil {
				log.Fatal(err)
			}
		default:
			fmt.Print(res.String())
			fmt.Printf("(%d rows)\n", res.Len())
		}
		if tr != nil {
			fmt.Fprint(os.Stderr, "\n"+tr.Tree())
		}
	case sparql.FormAsk:
		ok, err := sparql.Ask(g, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ok)
	case sparql.FormConstruct:
		out, err := sparql.Construct(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	case sparql.FormDescribe:
		out, err := sparql.Describe(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	}
}
