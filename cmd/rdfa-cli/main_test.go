package main

import (
	"os"
	"strings"
	"testing"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

func TestParseValue(t *testing.T) {
	ns := "http://e/"
	cases := []struct {
		in   string
		want rdf.Term
	}{
		{"42", rdf.NewTyped("42", rdf.XSDInteger)},
		{"-3", rdf.NewTyped("-3", rdf.XSDInteger)},
		{"3.14", rdf.NewTyped("3.14", rdf.XSDDecimal)},
		{"true", rdf.NewTyped("true", rdf.XSDBoolean)},
		{"2021-06-10", rdf.NewTyped("2021-06-10", rdf.XSDDate)},
		{"DELL", rdf.NewIRI(ns + "DELL")},
		{`"hello"`, rdf.NewString("hello")},
		{"http://x/y", rdf.NewIRI("http://x/y")},
	}
	for _, c := range cases {
		if got := parseValue(ns, c.in); got != c.want {
			t.Errorf("parseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePath(t *testing.T) {
	ns := "http://e/"
	p := parsePath(ns, "manufacturer/origin")
	if len(p) != 2 || p[0].P != rdf.NewIRI(ns+"manufacturer") || p[1].P != rdf.NewIRI(ns+"origin") {
		t.Fatalf("path = %v", p)
	}
	p = parsePath(ns, "^manufacturer")
	if len(p) != 1 || !p[0].Inverse {
		t.Fatalf("inverse path = %v", p)
	}
}

// TestExecuteScript drives the REPL command layer through a full session:
// Example 2 plus charting and nesting, asserting on the outputs.
func TestExecuteScript(t *testing.T) {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(g, ns)
	tmp, err := os.CreateTemp(t.TempDir(), "chart-*.svg")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	snapFile := tmp.Name() + ".json"
	script := []string{
		"show",
		"class Laptop",
		"pivot manufacturer",
		"back",
		"expand manufacturer/origin",
		"save " + snapFile,
		"group manufacturer/origin",
		"agg ID COUNT",
		"hifun",
		"run",
		"chart pie " + tmp.Name(),
		"load",
		"show",
		"close",
		"range USBPorts >= 2",
		"back",
		"reset",
		"sparql SELECT ?s WHERE { ?s a <" + ns + "Laptop> }",
	}
	for _, line := range script {
		if err := execute(sess, ns, line, out); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	svg, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("chart file not written")
	}
	// Unknown command and bad usages error without panicking.
	for _, bad := range []string{"nonsense", "class", "agg price NOPE", "chart pie"} {
		if err := execute(sess, ns, bad, out); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}
