// Command rdfa-cli is a terminal client for the faceted-analytics
// interaction model: the GUI of Fig 5.1/6.2 rendered as text, driven by
// commands instead of clicks.
//
// Usage:
//
//	rdfa-cli -data products-small
//
// Commands (inside the REPL):
//
//	show                          render the current state (facets, objects)
//	class <Name>                  class-based transition
//	click <path> <value>          property transition; path = p1/p2/...
//	range <path> <op> <value>     range filter, e.g. range USBPorts >= 2
//	group <path> [derive]         toggle the G button, e.g. group releaseDate YEAR
//	agg <path|ID> <OP>            toggle the Σ button, e.g. agg price AVG
//	run                           execute the analytic query, print the Answer Frame
//	chart <bar|pie|column|line|treemap|spiral> <file.svg>   save a chart of the answer
//	save <file.json>              snapshot the session (replayable bookmark)
//	load                          explore the answer with FS (HAVING / nesting)
//	close                         pop back to the outer dataset
//	back | reset                  undo / restart
//	hifun | sparql <query>        show the HIFUN query / run raw SPARQL
//	trace                         print the timing tree of the last run
//	profile                       EXPLAIN ANALYZE the current analytic query:
//	                              re-execute it bypassing the answer cache and
//	                              print the operator profile (wall time, rows,
//	                              est vs actual cardinality with q-error)
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/viz"
)

func main() {
	data := flag.String("data", "products-small", "dataset spec (see datagen.Load)")
	scale := flag.Int("scale", 0, "dataset scale")
	restore := flag.String("restore", "", "restore a session snapshot (JSON file) over the dataset")
	flag.BoolVar(&traceRuns, "trace", false, "print the per-phase timing tree after every run")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Printf("rdfa-cli %s (%s)\n", obs.Version(), runtime.Version())
		return
	}
	g, ns, err := datagen.Load(*data, *scale)
	if err != nil {
		log.Fatal(err)
	}
	var sess *core.Session
	if *restore != "" {
		snap, err := os.ReadFile(*restore)
		if err != nil {
			log.Fatal(err)
		}
		sess, err = core.RestoreSession(g, snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored session from %s (level %d, %d objects)\n",
			*restore, sess.Depth(), sess.State().Ext.Len())
	} else {
		sess = core.NewSession(g, ns)
	}
	st := g.Stats()
	fmt.Printf("rdfa-cli: %q loaded (%d triples). Type 'show' to see the state, 'quit' to exit.\n",
		*data, st.Triples)
	repl(sess, ns, os.Stdin, os.Stdout)
}

// traceRuns makes `run` print its timing tree (also available on demand
// via the `trace` command).
var traceRuns bool

func repl(sess *core.Session, ns string, in *os.File, out *os.File) {
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := execute(sess, ns, line, out); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}

func execute(sess *core.Session, ns string, line string, out *os.File) error {
	ns = sess.NS() // nested levels resolve names in the answer namespace
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "show":
		fmt.Fprint(out, sess.ComputeUIState(20, false).RenderText())
	case "class":
		if len(args) != 1 {
			return fmt.Errorf("usage: class <Name>")
		}
		sess.ClickClass(resolve(ns, args[0]))
		fmt.Fprintf(out, "%d objects\n", sess.State().Ext.Len())
	case "click":
		if len(args) != 2 {
			return fmt.Errorf("usage: click <path> <value>")
		}
		sess.ClickValue(parsePath(ns, args[0]), parseValue(ns, args[1]))
		fmt.Fprintf(out, "%d objects\n", sess.State().Ext.Len())
	case "range":
		if len(args) != 3 {
			return fmt.Errorf("usage: range <path> <op> <value>")
		}
		sess.ClickRange(parsePath(ns, args[0]), args[1], parseValue(ns, args[2]))
		fmt.Fprintf(out, "%d objects\n", sess.State().Ext.Len())
	case "expand":
		if len(args) != 1 {
			return fmt.Errorf("usage: expand <path>")
		}
		vals := sess.Model().ExpandPath(sess.State(), parsePath(ns, args[0]))
		for _, vc := range vals {
			fmt.Fprintf(out, "  %s (%d)\n", vc.Value.LocalName(), vc.Count)
		}
	case "pivot":
		if len(args) != 1 {
			return fmt.Errorf("usage: pivot <property>  (prefix with ^ for inverse)")
		}
		hop := args[0]
		inverse := strings.HasPrefix(hop, "^")
		hop = strings.TrimPrefix(hop, "^")
		sess.SwitchFocus(facet.PathStep{P: resolve(ns, hop), Inverse: inverse})
		fmt.Fprintf(out, "focus switched: %d objects\n", sess.State().Ext.Len())
	case "group":
		if len(args) < 1 {
			return fmt.Errorf("usage: group <path> [derive]")
		}
		spec := core.GroupSpec{Path: parsePath(ns, args[0])}
		if len(args) > 1 {
			spec.Derive = strings.ToUpper(args[1])
		}
		sess.ClickGroupBy(spec)
		fmt.Fprintf(out, "group-by: %v\n", sess.Analytics().GroupBy)
	case "agg":
		if len(args) != 2 {
			return fmt.Errorf("usage: agg <path|ID> <OP>")
		}
		var m core.MeasureSpec
		if !strings.EqualFold(args[0], "ID") {
			m.Path = parsePath(ns, args[0])
		}
		if !hifun.ValidOp(args[1]) {
			return fmt.Errorf("unknown aggregate %q", args[1])
		}
		sess.ClickAggregate(m, hifun.Operation{Op: hifun.AggOp(strings.ToUpper(args[1]))})
		fmt.Fprintf(out, "measure: %s, ops: %v\n", sess.Analytics().Measure, sess.Analytics().Ops)
	case "run":
		ans, err := sess.RunAnalytics()
		if err != nil {
			return err
		}
		fmt.Fprint(out, ans.String())
		if traceRuns {
			fmt.Fprint(out, "\n"+sess.LastTrace().Tree())
		}
	case "trace":
		tr := sess.LastTrace()
		if tr == nil {
			return fmt.Errorf("no analytic query has run yet")
		}
		fmt.Fprint(out, tr.Tree())
	case "profile":
		ans, prof, err := sess.ProfileAnalytics(context.Background())
		if err != nil {
			return err
		}
		fmt.Fprint(out, prof.Tree())
		fmt.Fprintf(out, "(%d rows)\n", len(ans.Rows))
	case "chart":
		if len(args) != 2 {
			return fmt.Errorf("usage: chart <bar|pie|column|line|treemap|spiral> <file.svg>")
		}
		ans := sess.Answer()
		if ans == nil {
			return fmt.Errorf("run an analytic query first")
		}
		series, err := viz.AnswerSeries(ans, 0)
		if err != nil {
			return err
		}
		var svg string
		switch args[0] {
		case "pie":
			svg = viz.PieChartSVG(series, 420)
		case "column":
			svg = viz.ColumnChartSVG(series, 640, 320)
		case "line":
			svg = viz.LineChartSVG(series, 640, 320)
		case "treemap":
			svg = viz.TreemapSVG(series, 640, 400)
		case "spiral":
			items := make([]viz.SpiralItem, len(series.Values))
			for i := range series.Values {
				items[i] = viz.SpiralItem{Label: series.Labels[i], Value: series.Values[i]}
			}
			svg = viz.SpiralSVG(viz.SpiralLayout{}.Layout(items), 4)
		default:
			svg = viz.BarChartSVG(series, 640)
		}
		if err := os.WriteFile(args[1], []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", args[1])
	case "save":
		if len(args) != 1 {
			return fmt.Errorf("usage: save <file.json>")
		}
		data, err := sess.Snapshot()
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[0], data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "session saved to %s\n", args[0])
	case "load":
		if err := sess.LoadAnswerAsDataset(); err != nil {
			return err
		}
		fmt.Fprintf(out, "answer loaded as dataset (level %d); facets are the answer columns\n", sess.Depth())
	case "close":
		if err := sess.CloseLevel(); err != nil {
			return err
		}
		fmt.Fprintf(out, "back at level %d\n", sess.Depth())
	case "back":
		if err := sess.Back(); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d objects\n", sess.State().Ext.Len())
	case "reset":
		sess.Reset()
		fmt.Fprintln(out, "reset")
	case "hifun":
		q, err := sess.BuildHIFUNQuery()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, q)
	case "sparql":
		if len(args) == 0 {
			return fmt.Errorf("usage: sparql <query>")
		}
		res, err := sparql.Select(sess.Model().G, strings.Join(args, " "))
		if err != nil {
			return err
		}
		res.Sort()
		fmt.Fprint(out, res.String())
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// resolve maps a local name (or full IRI) to a term in the session's
// namespace, honoring the answer namespace at nested levels.
func resolve(ns, name string) rdf.Term {
	if strings.Contains(name, "://") {
		return rdf.NewIRI(name)
	}
	return rdf.NewIRI(ns + name)
}

func parsePath(ns, s string) facet.Path {
	var path facet.Path
	for _, hop := range strings.Split(s, "/") {
		inverse := strings.HasPrefix(hop, "^")
		hop = strings.TrimPrefix(hop, "^")
		path = append(path, facet.PathStep{P: resolve(ns, hop), Inverse: inverse})
	}
	return path
}

// parseValue interprets a CLI value: integer, decimal, date, boolean or a
// name in the dataset namespace.
func parseValue(ns, s string) rdf.Term {
	if s == "true" || s == "false" {
		return rdf.NewTyped(s, rdf.XSDBoolean)
	}
	if len(s) == 10 && s[4] == '-' && s[7] == '-' {
		return rdf.NewTyped(s, rdf.XSDDate)
	}
	numeric := true
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		default:
			numeric = false
		}
	}
	if numeric && s != "" && s != "-" {
		if dot {
			return rdf.NewTyped(s, rdf.XSDDecimal)
		}
		return rdf.NewTyped(s, rdf.XSDInteger)
	}
	if strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) {
		return rdf.NewString(strings.Trim(s, `"`))
	}
	return resolve(ns, s)
}
